//! Multi-workload sets: several assembled programs fused into one
//! image with a scheduler stub that context-switches between them
//! mid-run.
//!
//! Each member program is assembled into its own code slot and given
//! its own data window. The generated scheduler stub runs them in
//! order: before each program it installs that program's data-window
//! discipline (`x26` base, `x27` mask, `sp` at the window top) and
//! calls its `main`; after the last program it issues the exit syscall.
//! The context switches are ordinary instructions, so every execution
//! way — golden interpreter, big-core feed, little-core replay — and
//! the full fault-injection/recovery machinery handle a fused set with
//! no special cases.

use crate::asm::{assemble_with, AsmConfig, Program};
use crate::loader::{pack_words, DATA_WINDOW, STACK_RESERVE};
use crate::suite::Kernel;
use meek_isa::inst::AluImmOp;
use meek_isa::{encode, ArchState, Inst, Reg, SparseMemory, CSR_OS_ENABLE, HALT_PC};
use meek_workloads::Workload;

/// Entry address of the generated scheduler stub.
pub const STUB_BASE: u64 = 0x1000;

/// Code-slot stride: program `i`'s code goes at `CODE_SLOT * (i + 1)`.
pub const CODE_SLOT: u64 = 0x8000;

/// First data window; program `i`'s window is `DATA_WINDOW` further.
pub const DATA_BASE: u64 = 0x1000_0000;

/// An ordered selection of suite kernels to fuse into one run.
#[derive(Debug, Clone)]
pub struct WorkloadSet {
    kernels: Vec<&'static Kernel>,
}

impl WorkloadSet {
    /// Builds a set from kernel names, in the given order.
    pub fn from_names(names: &[&str]) -> Result<WorkloadSet, String> {
        if names.is_empty() {
            return Err("a workload set needs at least one kernel".into());
        }
        let kernels = names
            .iter()
            .map(|n| crate::suite::kernel(n).ok_or_else(|| format!("unknown kernel `{n}`")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(WorkloadSet { kernels })
    }

    /// The full suite, in canonical order.
    pub fn all() -> WorkloadSet {
        WorkloadSet { kernels: crate::suite::KERNELS.iter().collect() }
    }

    /// Member kernels, in run order.
    pub fn kernels(&self) -> &[&'static Kernel] {
        &self.kernels
    }

    /// The exact console output of a clean fused run: each member's
    /// output, concatenated in run order.
    pub fn expected_console(&self) -> String {
        self.kernels.iter().map(|k| k.expected_console).collect()
    }

    /// A `+`-joined display name.
    pub fn display_name(&self) -> String {
        self.kernels.iter().map(|k| k.name).collect::<Vec<_>>().join("+")
    }

    /// Assembles every member into its slot and fuses them into one
    /// workload.
    ///
    /// # Panics
    ///
    /// Panics if a committed kernel fails to assemble (a repo bug).
    pub fn fuse(&self) -> Workload {
        let programs: Vec<Program> = self
            .kernels
            .iter()
            .enumerate()
            .map(|(i, k)| {
                let cfg = AsmConfig {
                    code_base: CODE_SLOT * (i as u64 + 1),
                    data_base: DATA_BASE + i as u64 * DATA_WINDOW,
                };
                match assemble_with(k.name, k.source, &cfg) {
                    Ok(p) => p,
                    Err(e) => panic!("kernel `{}` fails to assemble: {e}", k.name),
                }
            })
            .collect();
        match fuse_programs(&self.display_name(), &programs) {
            Ok(wl) => wl,
            Err(e) => panic!("fusing `{}` failed: {e}", self.display_name()),
        }
    }
}

/// Fuses pre-assembled programs (each defining `main`, each laid out in
/// a disjoint code slot above [`STUB_BASE`] with a [`DATA_WINDOW`]-byte
/// data window) into a single workload driven by a generated scheduler
/// stub.
pub fn fuse_programs(name: &str, programs: &[Program]) -> Result<Workload, String> {
    if programs.is_empty() {
        return Err("cannot fuse an empty program list".into());
    }
    let mut stub: Vec<Inst> = Vec::new();
    let mut jal_patch: Vec<(usize, u64)> = Vec::new(); // (stub index, target addr)
    for prog in programs {
        let Some(&main) = prog.symbols.get("main") else {
            return Err(format!("program `{}` does not define `main`", prog.name));
        };
        if prog.data.len() as u64 + STACK_RESERVE > DATA_WINDOW {
            return Err(format!("program `{}` overflows its data window", prog.name));
        }
        let window_top = prog.data_base + DATA_WINDOW;
        // The window bases are DATA_WINDOW-aligned, so a bare lui loads
        // each of these constants exactly.
        debug_assert_eq!(window_top & 0xFFF, 0);
        debug_assert_eq!(prog.data_base & 0xFFF, 0);
        stub.push(Inst::Lui { rd: Reg::X2, imm: (window_top >> 12) as i32 });
        stub.push(Inst::Lui { rd: Reg::X26, imm: (prog.data_base >> 12) as i32 });
        stub.push(Inst::Lui { rd: Reg::X27, imm: (DATA_WINDOW >> 12) as i32 });
        stub.push(Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X27, rs1: Reg::X27, imm: -1 });
        jal_patch.push((stub.len(), main));
        stub.push(Inst::Jal { rd: Reg::X1, offset: 0 }); // patched below
    }
    stub.push(Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X17, rs1: Reg::X0, imm: 93 });
    stub.push(Inst::Ecall);
    for (idx, target) in jal_patch {
        let pc = STUB_BASE + 4 * idx as u64;
        let offset = target.wrapping_sub(pc) as i64;
        if offset % 2 != 0 || !(-(1 << 20)..(1 << 20)).contains(&offset) {
            return Err(format!("scheduler jal to {target:#x} out of range"));
        }
        stub[idx] = Inst::Jal { rd: Reg::X1, offset: offset as i32 };
    }

    let mut image = SparseMemory::new();
    let stub_words: Vec<u32> = stub.iter().map(encode).collect();
    image.load_program(STUB_BASE, &stub_words);
    let mut code_end = STUB_BASE + 4 * stub_words.len() as u64;
    let mut window_end = DATA_BASE + DATA_WINDOW;
    for prog in programs {
        if prog.code_base < code_end {
            return Err(format!("program `{}` overlaps earlier code", prog.name));
        }
        image.load_program(prog.code_base, &prog.code);
        code_end = prog.code_base + 4 * prog.code.len() as u64;
        if !prog.data.is_empty() {
            image.load_program(prog.data_base, &pack_words(&prog.data));
        }
        window_end = window_end.max(prog.data_base + DATA_WINDOW);
    }

    let mut initial = ArchState::new(STUB_BASE);
    initial.set_csr(CSR_OS_ENABLE, 1);
    let static_len = ((code_end - STUB_BASE) / 4) as usize;
    let window_span = (window_end - DATA_BASE).next_power_of_two();
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    Ok(Workload::from_image(leaked, image, STUB_BASE, HALT_PC, static_len, initial)
        .with_data_window(DATA_BASE, window_span))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::run_golden;

    #[test]
    fn fused_pair_runs_both_kernels_in_order() {
        let set = WorkloadSet::from_names(&["memcpy", "recurse"]).unwrap();
        let wl = set.fuse();
        let out = run_golden(&wl, 500_000);
        assert!(out.exited, "fused pair hit the cap");
        assert_eq!(out.console_text(), "memcpy ok\nrecurse ok\n");
    }

    #[test]
    fn full_suite_fuses_and_context_switches_cleanly() {
        let set = WorkloadSet::all();
        let wl = set.fuse();
        let out = run_golden(&wl, 500_000);
        assert!(out.exited, "fused suite hit the cap");
        assert_eq!(out.console_text(), set.expected_console());
    }

    #[test]
    fn unknown_kernel_names_are_rejected() {
        assert!(WorkloadSet::from_names(&["memcpy", "nope"]).is_err());
        assert!(WorkloadSet::from_names(&[]).is_err());
    }

    #[test]
    fn fused_workload_declares_a_covering_data_window() {
        let set = WorkloadSet::from_names(&["list", "strsearch", "syscalls"]).unwrap();
        let wl = set.fuse();
        let (base, size) = wl.data_window().unwrap();
        assert_eq!(base, DATA_BASE);
        assert!(size >= 3 * DATA_WINDOW, "window must cover all three slots");
        assert!(size.is_power_of_two());
    }
}
