//! `meek-progs` — assemble, inspect, and run real-program workloads.
//!
//! ```text
//! meek-progs list
//! meek-progs asm crates/progs/kernels/crc32.s
//! meek-progs run crc32
//! meek-progs run crc32 --system
//! meek-progs set memcpy crc32 recurse
//! ```
//!
//! `run` and `set` execute on the golden interpreter by default and
//! print the program's console output; `--system` additionally runs the
//! full MEEK system (big core + checker cores) and cross-checks its
//! final architectural state against the golden run.

use meek_core::Sim;
use meek_isa::disasm::disasm_word;
use meek_progs::{
    assemble, run_golden, suite, workload, RunOutcome, WorkloadSet, KERNELS, KERNEL_INST_CAP,
};
use meek_workloads::Workload;
use std::process::ExitCode;

const USAGE: &str = "\
meek-progs — real-program workloads for MEEK

USAGE:
    meek-progs <COMMAND> [OPTIONS]

COMMANDS:
    list                      List the committed benchmark suite
    asm <FILE.s> [--lint]     Assemble a source file and print a listing
                              (--lint: also run the static verifier)
    run <KERNEL|FILE.s>       Assemble + run one program
    set <KERNEL>...           Fuse several suite kernels into one
                              multi-workload image and run it

OPTIONS (run/set):
    --max-insts <N>    Dynamic instruction cap [default: 200000]
    --system           Also run the full MEEK system (big core + checker
                       cores) and cross-check final state vs golden
    -h, --help         Print this help
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "-h" || args[0] == "--help" {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let r = match args[0].as_str() {
        "list" => cmd_list(),
        "asm" => cmd_asm(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "set" => cmd_set(&args[1..]),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_list() -> Result<(), String> {
    println!("{:<10} {:<62} console", "kernel", "description");
    for k in &KERNELS {
        println!("{:<10} {:<62} {:?}", k.name, k.description, k.expected_console);
    }
    Ok(())
}

fn cmd_asm(rest: &[String]) -> Result<(), String> {
    let (lint, paths): (Vec<&String>, Vec<&String>) =
        rest.iter().partition(|a| a.as_str() == "--lint");
    let lint = !lint.is_empty();
    let [path] = paths[..] else {
        return Err("usage: meek-progs asm <FILE.s> [--lint]".into());
    };
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let prog = assemble("cli", &source).map_err(|e| format!("{path}: {e}"))?;
    println!("# code: {} words at {:#x}", prog.code.len(), prog.code_base);
    for (i, &w) in prog.code.iter().enumerate() {
        let addr = prog.code_base + 4 * i as u64;
        println!("{addr:#8x}: {w:08x}  {}", disasm_word(w));
    }
    if !prog.data.is_empty() {
        println!("# data: {} bytes at {:#x}", prog.data.len(), prog.data_base);
    }
    if !prog.symbols.is_empty() {
        println!("# symbols:");
        for (name, addr) in &prog.symbols {
            println!("#   {addr:#8x} {name}");
        }
    }
    if lint {
        let report = meek_progs::analyze_program(&prog);
        print!("{report}");
        if !report.violations.is_empty() {
            return Err(format!("{path}: {} static violation(s)", report.violations.len()));
        }
    }
    Ok(())
}

struct RunOpts {
    max_insts: u64,
    system: bool,
    positional: Vec<String>,
}

fn parse_run_opts(rest: &[String]) -> Result<RunOpts, String> {
    let mut opts = RunOpts { max_insts: KERNEL_INST_CAP, system: false, positional: Vec::new() };
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-insts" => {
                let v = it.next().ok_or("--max-insts needs a value")?;
                opts.max_insts = v.parse().map_err(|_| format!("bad --max-insts value `{v}`"))?;
            }
            "--system" => opts.system = true,
            s if s.starts_with('-') => return Err(format!("unknown option `{s}`")),
            s => opts.positional.push(s.to_string()),
        }
    }
    Ok(opts)
}

fn cmd_run(rest: &[String]) -> Result<(), String> {
    let opts = parse_run_opts(rest)?;
    let [target] = &opts.positional[..] else {
        return Err("usage: meek-progs run <KERNEL|FILE.s> [OPTIONS]".into());
    };
    let wl = if let Some(k) = meek_progs::kernel(target) {
        suite::workload(k)
    } else if target.ends_with(".s") {
        let source = std::fs::read_to_string(target).map_err(|e| format!("{target}: {e}"))?;
        let prog = assemble("cli", &source).map_err(|e| format!("{target}: {e}"))?;
        workload(&prog)
    } else {
        return Err(format!("`{target}` is neither a suite kernel nor a .s file"));
    };
    execute(&wl, &opts)
}

fn cmd_set(rest: &[String]) -> Result<(), String> {
    let opts = parse_run_opts(rest)?;
    if opts.positional.is_empty() {
        return Err("usage: meek-progs set <KERNEL>... [OPTIONS]".into());
    }
    let names: Vec<&str> = opts.positional.iter().map(|s| s.as_str()).collect();
    let set = WorkloadSet::from_names(&names)?;
    let wl = set.fuse();
    println!("# fused {} kernels: {}", set.kernels().len(), set.display_name());
    execute(&wl, &opts)
}

fn execute(wl: &Workload, opts: &RunOpts) -> Result<(), String> {
    let golden = run_golden(wl, opts.max_insts);
    report_golden(&golden);
    if !golden.exited {
        return Err(format!("hit the {}-instruction cap before exit", opts.max_insts));
    }
    if opts.system {
        run_system(wl, &golden)?;
    }
    Ok(())
}

fn report_golden(out: &RunOutcome) {
    print!("{}", out.console_text());
    println!(
        "# golden: {} instructions retired, {}",
        out.retired,
        if out.exited { "exited" } else { "capped" }
    );
}

fn run_system(wl: &Workload, golden: &RunOutcome) -> Result<(), String> {
    let sim = Sim::builder(wl, golden.retired).build().map_err(|e| e.to_string())?;
    let outcome = sim.run();
    let mut check = wl.run(golden.retired);
    while check.next_retired().is_some() {}
    let ok = outcome.final_state() == check.state();
    println!(
        "# system: {} cycles ({} app), {} committed, {} segments verified, {} failed",
        outcome.report.cycles,
        outcome.report.app_cycles,
        outcome.report.committed,
        outcome.report.verified_segments,
        outcome.report.failed_segments,
    );
    if !ok {
        return Err("full-system final state diverges from golden".into());
    }
    println!("# system final state matches golden");
    Ok(())
}
