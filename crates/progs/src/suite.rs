//! The in-repo benchmark suite: eight assembled RV64 kernels committed
//! as `.s` sources, each self-checking and reporting through the
//! console syscall.
//!
//! Every kernel follows the same shape: a `_start` stub that calls
//! `main` and issues the exit syscall, a `main` that does the work and
//! prints `"<name> ok\n"` (or `BAD`) via putchar, and a `.data` section
//! for messages and buffers. The `main` entry point is what
//! [`crate::set`] uses to fuse kernels into multi-workload programs.

use crate::asm::{assemble, Program};
use crate::loader;
use meek_workloads::Workload;

/// One committed benchmark kernel.
#[derive(Debug, Clone, Copy)]
pub struct Kernel {
    /// Suite-unique kernel name (also the workload name).
    pub name: &'static str,
    /// One-line description for listings.
    pub description: &'static str,
    /// The committed assembly source.
    pub source: &'static str,
    /// The exact console output of a clean run.
    pub expected_console: &'static str,
}

/// The full suite, in canonical order.
pub const KERNELS: [Kernel; 8] = [
    Kernel {
        name: "memcpy",
        description: "byte-loop copy of a patterned 64-byte buffer, verified",
        source: include_str!("../kernels/memcpy.s"),
        expected_console: "memcpy ok\n",
    },
    Kernel {
        name: "qsort",
        description: "recursive Lomuto quicksort of 24 LCG values, order-checked",
        source: include_str!("../kernels/qsort.s"),
        expected_console: "qsort ok\n",
    },
    Kernel {
        name: "crc32",
        description: "bitwise reflected CRC-32 of a classic test vector",
        source: include_str!("../kernels/crc32.s"),
        expected_console: "crc32 414fa339\n",
    },
    Kernel {
        name: "matmul",
        description: "5x5 integer matrix multiply, row sums verified",
        source: include_str!("../kernels/matmul.s"),
        expected_console: "matmul ok\n",
    },
    Kernel {
        name: "list",
        description: "linked-list build and pointer-chasing traversal",
        source: include_str!("../kernels/list.s"),
        expected_console: "list ok\n",
    },
    Kernel {
        name: "strsearch",
        description: "naive substring search past a near-miss prefix",
        source: include_str!("../kernels/strsearch.s"),
        expected_console: "strsearch ok\n",
    },
    Kernel {
        name: "syscalls",
        description: "trap barrage: unknown syscalls, ebreaks, instret CSR reads",
        source: include_str!("../kernels/syscalls.s"),
        expected_console: "syscalls ok\n",
    },
    Kernel {
        name: "recurse",
        description: "naive recursive Fibonacci, 13 stack frames deep",
        source: include_str!("../kernels/recurse.s"),
        expected_console: "recurse ok\n",
    },
];

/// Looks a kernel up by name.
pub fn kernel(name: &str) -> Option<&'static Kernel> {
    KERNELS.iter().find(|k| k.name == name)
}

/// Assembles a kernel's committed source.
///
/// # Panics
///
/// Panics if the committed source fails to assemble — that is a repo
/// bug, caught by the suite tests.
pub fn program(k: &Kernel) -> Program {
    match assemble(k.name, k.source) {
        Ok(p) => p,
        Err(e) => panic!("committed kernel `{}` fails to assemble: {e}", k.name),
    }
}

/// Assembles and loads a kernel as a standalone [`Workload`].
pub fn workload(k: &Kernel) -> Workload {
    loader::workload(&program(k))
}

/// A generous per-kernel dynamic instruction cap: the largest suite
/// kernel retires ~20k instructions.
pub const KERNEL_INST_CAP: u64 = 200_000;

/// The campaign-facing name of the fused all-kernel multi-workload set
/// (its per-kernel `display_name` is not `'static`).
pub const SET_NAME: &str = "progs-set";

/// Cases in the canonical suite rotation: each kernel once, then the
/// fused all-kernel set.
pub fn rotation_len() -> u64 {
    KERNELS.len() as u64 + 1
}

/// The canonical benchmark rotation shared by `meek-difftest --suite
/// progs` and `meek-serve` difftest jobs: kernels in canonical order,
/// then the fused all-kernel multi-workload set.
pub fn rotation_workload(case: u64) -> Workload {
    let slot = case % rotation_len();
    if (slot as usize) < KERNELS.len() {
        workload(&KERNELS[slot as usize])
    } else {
        crate::set::WorkloadSet::all().fuse()
    }
}

/// Dynamic instruction counts of every suite workload (and the fused
/// set, under [`SET_NAME`]), measured once on the golden interpreter
/// and memoised for the process lifetime. Fault campaigns use these to
/// bound shard budgets and arm windows to what a program actually
/// retires — a committed kernel runs once and exits, unlike a
/// profile-synthesised loop that fills any budget.
fn dynamic_lens() -> &'static std::collections::BTreeMap<&'static str, u64> {
    static LENS: std::sync::OnceLock<std::collections::BTreeMap<&'static str, u64>> =
        std::sync::OnceLock::new();
    LENS.get_or_init(|| {
        let mut m = std::collections::BTreeMap::new();
        for k in &KERNELS {
            m.insert(k.name, crate::loader::run_golden(&workload(k), KERNEL_INST_CAP).retired);
        }
        let set = crate::set::WorkloadSet::all().fuse();
        m.insert(SET_NAME, crate::loader::run_golden(&set, KERNEL_INST_CAP).retired);
        m
    })
}

/// Instructions `k` retires on a clean golden run (memoised).
pub fn dynamic_len(k: &Kernel) -> u64 {
    dynamic_lens()[k.name]
}

/// Instructions the fused all-kernel set retires on a clean golden run
/// (memoised).
pub fn set_dynamic_len() -> u64 {
    dynamic_lens()[SET_NAME]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::run_golden;

    #[test]
    fn every_kernel_assembles() {
        for k in &KERNELS {
            let p = program(k);
            assert!(!p.code.is_empty(), "{}", k.name);
            assert!(p.symbols.contains_key("main"), "{} must define `main`", k.name);
        }
    }

    #[test]
    fn every_kernel_runs_clean_on_the_golden_interpreter() {
        for k in &KERNELS {
            let out = run_golden(&workload(k), KERNEL_INST_CAP);
            assert!(out.exited, "{} hit the instruction cap", k.name);
            assert_eq!(out.console_text(), k.expected_console, "{} console", k.name);
        }
    }

    #[test]
    fn crc32_output_matches_an_independent_implementation() {
        // Mirror the kernel's algorithm in Rust over the same bytes.
        let msg = b"The quick brown fox jumps over the lazy dog";
        let mut crc: u32 = !0;
        for &b in msg {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
        }
        let expected = format!("crc32 {:08x}\n", !crc);
        assert_eq!(kernel("crc32").unwrap().expected_console, expected);
    }

    #[test]
    fn kernel_names_are_unique_and_resolvable() {
        for k in &KERNELS {
            assert_eq!(kernel(k.name).unwrap().name, k.name);
        }
        assert!(kernel("nonexistent").is_none());
    }
}
