//! Assembler ⇄ disassembler round-trip: the [`meek_isa::disasm`]
//! grammar is exactly the grammar [`meek_progs::assemble`] parses, so
//! disassembling any assembled program and reassembling the listing
//! must reproduce the machine words byte-identically.

use meek_isa::decode;
use meek_isa::disasm::disasm_word;
use meek_progs::{assemble, suite, KERNELS};

/// Disassembles every code word of `code` and reassembles the listing,
/// asserting the words come back byte-identical.
fn assert_round_trips(name: &str, code: &[u32]) {
    let listing: String = code.iter().map(|&w| disasm_word(w) + "\n").collect();
    let back = assemble(name, &listing)
        .unwrap_or_else(|e| panic!("{name}: disassembly does not reassemble: {e}\n{listing}"));
    assert_eq!(back.code.len(), code.len(), "{name}: word count changed");
    for (i, (&orig, &re)) in code.iter().zip(&back.code).enumerate() {
        assert_eq!(
            re,
            orig,
            "{name}: word {i} changed {orig:#010x} -> {re:#010x} via `{}`",
            disasm_word(orig)
        );
    }
}

/// Every committed suite kernel round-trips: its pseudo-instructions,
/// labels, and data references all flatten to base forms the
/// disassembler prints and the assembler re-reads.
#[test]
fn committed_kernels_round_trip() {
    for k in &KERNELS {
        let prog = suite::program(k);
        assert_round_trips(k.name, &prog.code);
    }
}

/// One instance of every instruction form the assembler can emit,
/// with immediates chosen to hit signs and field extremes the
/// disassembler has to print faithfully.
const ALL_FORMS: &str = "
    lui a0, 0x12345
    lui t0, 0xfffff
    auipc s1, 0x7ffff
    auipc gp, 0x80000
    jal ra, 2048
    jal zero, -4
    jalr ra, 0(a0)
    jalr zero, -2047(t6)
    beq a0, a1, -8
    bne s0, s1, 4094
    blt t0, t1, -4096
    bge sp, gp, 16
    bltu a6, a7, -2
    bgeu s10, s11, 1024
    lb a0, -1(sp)
    lh a1, 2(tp)
    lw a2, -2048(s0)
    ld a3, 2047(ra)
    lbu a4, 0(t3)
    lhu a5, 8(a0)
    lwu t2, -16(s5)
    sb a0, -1(sp)
    sh a1, 2(tp)
    sw a2, -2048(s0)
    sd a3, 2047(ra)
    addi a0, a1, -2048
    slti t0, t1, 2047
    sltiu s2, s3, 1
    xori a4, a5, -1
    ori t4, t5, 0x7f
    andi s6, s7, 0xff
    slli a0, a1, 63
    srli a2, a3, 1
    srai a4, a5, 32
    addiw t0, t1, -5
    slliw s0, s1, 31
    srliw a6, a7, 0
    sraiw t2, t3, 7
    add a0, a1, a2
    sub s0, s1, s2
    sll t0, t1, t2
    slt a3, a4, a5
    sltu a6, a7, t3
    xor s3, s4, s5
    srl t4, t5, t6
    sra s6, s7, s8
    or s9, s10, s11
    and ra, sp, gp
    addw tp, a0, a1
    subw a2, a3, a4
    sllw a5, a6, a7
    srlw t0, t1, t2
    sraw s0, s1, s2
    mul a0, a1, a2
    mulh a3, a4, a5
    mulhsu t0, t1, t2
    mulhu s0, s1, s2
    div a6, a7, t3
    divu t4, t5, t6
    rem s3, s4, s5
    remu s6, s7, s8
    mulw a0, a1, a2
    divw a3, a4, a5
    divuw t0, t1, t2
    remw s0, s1, s2
    remuw a6, a7, t3
    fld f0, -8(a0)
    fsd f31, 2040(sp)
    fadd.d f1, f2, f3
    fsub.d f4, f5, f6
    fmul.d f7, f8, f9
    fdiv.d f10, f11, f12
    fsgnj.d f13, f14, f15
    fmin.d f16, f17, f18
    fmax.d f19, f20, f21
    fsqrt.d f22, f23
    fmadd.d f24, f25, f26, f27
    feq.d a0, f1, f2
    flt.d a1, f3, f4
    fle.d a2, f5, f6
    fcvt.d.l f28, t0
    fcvt.l.d t1, f29
    fmv.x.d t2, f30
    fmv.d.x f0, t3
    csrrw a0, 0x7c0, a1
    csrrs t0, 0xc02, zero
    csrrc s0, 0x340, s1
    csrrwi a2, 0x7c0, 31
    csrrsi a3, 0xc02, 0
    csrrci a4, 0x340, 5
    fence
    ecall
    ebreak
";

#[test]
fn every_emittable_form_round_trips() {
    let prog = assemble("all-forms", ALL_FORMS).expect("all-forms source assembles");
    // Every word must genuinely decode — a `.word` fallback would make
    // the round-trip vacuous for that line.
    for &w in &prog.code {
        decode(w).unwrap_or_else(|e| panic!("{:#010x} does not decode: {e:?}", w));
    }
    assert_round_trips("all-forms", &prog.code);
}

/// Undecodable words survive too, via the `.word` fallback both sides
/// agree on.
#[test]
fn undecodable_words_round_trip_as_word_directives() {
    for raw in [0u32, 0xFFFF_FFFF, 0x0000_006B] {
        assert!(decode(raw).is_err(), "{raw:#010x} unexpectedly decodes");
        let line = disasm_word(raw);
        assert!(line.starts_with(".word "), "fallback form changed: `{line}`");
        let back = assemble("raw", &line).unwrap();
        assert_eq!(back.code, vec![raw], "`{line}`");
    }
}
