//! Synthetic workloads standing in for SPECint 2006 and PARSEC 3.
//!
//! The paper evaluates MEEK on full SPECint 2006 and PARSEC 3
//! (simmedium). Neither suite can be redistributed here, so this crate
//! synthesises **real RISC-V programs** whose *dynamic characteristics*
//! match published characterisations of each benchmark: instruction mix
//! (including the division density that makes swaptions MEEK's worst
//! case), branch predictability, working-set size, and memory-access
//! randomness. The programs are loops of generated basic blocks executed
//! by the functional oracle — every load, store, branch and divide is
//! actually executed and therefore actually logged, forwarded, and
//! replayed by the checker cores.
//!
//! See DESIGN.md ("Substitution table") for why this preserves the
//! behaviours the paper's figures measure.
//!
//! # Example
//!
//! ```
//! use meek_workloads::{parsec3, Workload};
//!
//! let profile = parsec3().into_iter().find(|p| p.name == "swaptions").unwrap();
//! let wl = Workload::build(&profile, 42);
//! let mut run = wl.run(10_000);
//! let mut divides = 0;
//! while let Some(r) = run.next_retired() {
//!     if matches!(r.class, meek_isa::ExecClass::IntDiv | meek_isa::ExecClass::FpDiv) {
//!         divides += 1;
//!     }
//! }
//! assert!(divides > 100, "swaptions is divide-heavy");
//! ```

pub mod cache;
pub mod codegen;
pub mod profile;

pub use cache::WorkloadCache;
pub use codegen::{Workload, WorkloadRun};
pub use profile::{parsec3, spec_int_2006, BenchmarkProfile, InstMix, Suite};
