//! Shared, thread-safe cache of built workloads.
//!
//! Synthesising a [`Workload`] runs the full code generator — thousands
//! of instructions of codegen plus working-set initialisation — so a
//! fault-injection campaign that runs hundreds of simulations per
//! benchmark must not rebuild the program for every fault. The cache
//! builds each `(profile, seed)` pair exactly once, even under
//! concurrent first access from many campaign worker threads, and hands
//! out `Arc<Workload>` clones that share the underlying program image.

use crate::codegen::Workload;
use crate::profile::BenchmarkProfile;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

// The campaign engine moves built programs across threads; workloads
// are plain data, and these assertions keep them that way.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Workload>();
    assert_send_sync::<BenchmarkProfile>();
};

/// A build-once slot for one `(benchmark, seed)` pair.
type Slot = Arc<OnceLock<Arc<Workload>>>;

/// A thread-safe, build-once cache of synthesised workloads keyed by
/// `(benchmark name, seed)`.
#[derive(Default)]
pub struct WorkloadCache {
    // Two-level locking: the map lock is held only to find or insert the
    // per-key cell, never during codegen, so distinct benchmarks build
    // concurrently while duplicate requests for one benchmark block on
    // its cell instead of building twice.
    slots: Mutex<HashMap<(&'static str, u64), Slot>>,
}

impl WorkloadCache {
    /// Creates an empty cache.
    pub fn new() -> WorkloadCache {
        WorkloadCache::default()
    }

    /// Returns the workload for `(profile, seed)`, building it on first
    /// access. Concurrent callers for the same key build once and share.
    pub fn get(&self, profile: &BenchmarkProfile, seed: u64) -> Arc<Workload> {
        self.get_with(profile.name, seed, || Workload::build(profile, seed))
    }

    /// Build-once access for workloads that are not profile-synthesised
    /// (assembled real programs, fused multi-workload sets): `build`
    /// runs at most once per `(name, seed)` key, concurrent first
    /// callers block on the same slot instead of building twice.
    pub fn get_with(
        &self,
        name: &'static str,
        seed: u64,
        build: impl FnOnce() -> Workload,
    ) -> Arc<Workload> {
        let cell = {
            let mut slots = self.slots.lock().expect("workload cache poisoned");
            Arc::clone(slots.entry((name, seed)).or_default())
        };
        Arc::clone(cell.get_or_init(|| Arc::new(build())))
    }

    /// Number of distinct workloads built so far.
    pub fn len(&self) -> usize {
        self.slots
            .lock()
            .expect("workload cache poisoned")
            .values()
            .filter(|c| c.get().is_some())
            .count()
    }

    /// Whether nothing has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::parsec3;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn same_key_shares_one_build() {
        let cache = WorkloadCache::new();
        let p = &parsec3()[0];
        let a = cache.get(p, 7);
        let b = cache.get(p, 7);
        assert!(Arc::ptr_eq(&a, &b), "same (profile, seed) must share");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_seeds_build_distinct_programs() {
        let cache = WorkloadCache::new();
        let p = &parsec3()[0];
        let a = cache.get(p, 1);
        let b = cache.get(p, 2);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_first_access_builds_once() {
        let cache = Arc::new(WorkloadCache::new());
        let hits = Arc::new(AtomicUsize::new(0));
        let profiles = parsec3();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let hits = Arc::clone(&hits);
                let p = &profiles[0];
                s.spawn(move || {
                    let wl = cache.get(p, 42);
                    assert_eq!(wl.name, p.name);
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
        assert_eq!(cache.len(), 1, "eight threads, one build");
    }
}
