//! Program synthesis: turns a [`BenchmarkProfile`] into a real, runnable
//! RISC-V program with the profile's dynamic character.
//!
//! The generated program is one large loop of profile-mixed instructions:
//!
//! * loads/stores address the profile's working set through two pointer
//!   registers — one re-pointed pseudo-randomly (xorshift), one streaming
//!   sequentially — in the profile's `random_access` proportion;
//! * conditional branches are either statically biased (learnable by
//!   TAGE) or compare pseudo-random chain registers (data-driven, i.e.
//!   effectively unpredictable), in the profile's
//!   `branch_predictability` proportion; all conditional branches target
//!   the next instruction, so both outcomes retire the same dynamic
//!   stream while still exercising the predictor and redirect machinery;
//! * integer/FP compute forms dependence chains over a small register
//!   pool, periodically re-seeded from the xorshift state so values stay
//!   live (and so corrupted replay data visibly propagates to stores and
//!   checkpoints);
//! * divides use a guaranteed non-zero divisor register.
//!
//! Class selection is *deficit-driven*: each step emits the class whose
//! realised fraction lags its target most, with addressing/support
//! instructions booked against the ALU budget, so realised mixes track
//! the profile closely.

use crate::profile::BenchmarkProfile;
use meek_isa::inst::{AluImmOp, AluOp, BranchOp, FpOp, Inst, LoadOp, MulDivOp, StoreOp};
use meek_isa::state::RegCheckpoint;
use meek_isa::{
    encode, step_predecoded, ArchState, Bus, FReg, PreDecoded, Reg, Retired, SparseMemory, Trap,
};
use meek_mem::{JournaledMem, UndoLog};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Base address of the generated code.
pub const CODE_BASE: u64 = 0x1000;
/// Base address of the working-set data region.
pub const DATA_BASE: u64 = 0x1000_0000;
/// Address of the FP constant pool.
const FP_CONST_BASE: u64 = 0x00F0_0000;

// Register conventions of the generated code.
const R_BASE: Reg = Reg::X5; // data base pointer
const CHAIN: [Reg; 6] = [Reg::X6, Reg::X7, Reg::X8, Reg::X9, Reg::X10, Reg::X11];
const R_DIVISOR: Reg = Reg::X12; // non-zero divide guard
const R_XS: Reg = Reg::X14; // xorshift state
const R_TMP: Reg = Reg::X15; // scratch
const R_RANDPTR: Reg = Reg::X18; // pseudo-random pointer
const R_STREAMPTR: Reg = Reg::X19; // streaming pointer
const R_LOOP: Reg = Reg::X20; // loop counter
const R_MASK: Reg = Reg::X24; // working-set mask (full)
const R_HOTMASK: Reg = Reg::X25; // hot-region mask (L1-resident tier)
const R_MIDMASK: Reg = Reg::X26; // warm-region mask (L2-resident tier)

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Alu,
    Load,
    Store,
    Branch,
    Mul,
    Div,
    FpAdd,
    FpMul,
    FpDiv,
}

const CLASSES: [Class; 9] = [
    Class::Alu,
    Class::Load,
    Class::Store,
    Class::Branch,
    Class::Mul,
    Class::Div,
    Class::FpAdd,
    Class::FpMul,
    Class::FpDiv,
];

/// A generated workload: program image plus entry metadata.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (from the profile).
    pub name: &'static str,
    image: SparseMemory,
    entry: u64,
    exit_pc: u64,
    /// Static instructions in the program.
    pub static_len: usize,
    initial: ArchState,
    /// Declared writable data window `(base, size)`, when the program
    /// source knows it (codegen working set, fuzz pointer-masked window,
    /// loaded-image `.data` span). `None` for images with no declared
    /// window.
    data_window: Option<(u64, u64)>,
    /// The code span decoded once at construction — every execution way
    /// (golden oracle, big-core feed, little-core replay) consumes this
    /// table instead of re-decoding words in its hot loop.
    predecoded: Arc<PreDecoded>,
}

impl Workload {
    /// Synthesises a program for `profile` with a deterministic `seed`.
    pub fn build(profile: &BenchmarkProfile, seed: u64) -> Workload {
        Generator::new(profile, seed).generate()
    }

    /// Wraps an arbitrary pre-built program image as a workload, so
    /// external generators (the difftest fuzzer) can run programs the
    /// profile-driven codegen would never emit through the full MEEK
    /// system. The program must be trap-free along its executed path and
    /// reach `exit_pc` (or the run cap) like generated workloads do.
    pub fn from_image(
        name: &'static str,
        image: SparseMemory,
        entry: u64,
        exit_pc: u64,
        static_len: usize,
        initial: ArchState,
    ) -> Workload {
        let predecoded = Arc::new(PreDecoded::from_image(&image, entry, static_len));
        Workload { name, image, entry, exit_pc, static_len, initial, data_window: None, predecoded }
    }

    /// Declares the program's writable data window `(base, size)` — the
    /// span its stores are confined to. `SimBuilder` validates declared
    /// windows against the code span, and loaded images use it to obey
    /// the x26/x27 base/mask data discipline.
    pub fn with_data_window(mut self, base: u64, size: u64) -> Workload {
        self.data_window = Some((base, size));
        self
    }

    /// The declared writable data window `(base, size)`, if any.
    pub fn data_window(&self) -> Option<(u64, u64)> {
        self.data_window
    }

    /// The architectural state a run starts from (loaded images carry
    /// non-trivial initial register/CSR state: stack pointer, data-window
    /// base/mask registers, the OS-surface enable CSR).
    pub fn initial_state(&self) -> &ArchState {
        &self.initial
    }

    /// The read-only program image (little cores fetch from this).
    pub fn image(&self) -> &SparseMemory {
        &self.image
    }

    /// Entry PC.
    pub fn entry(&self) -> u64 {
        self.entry
    }

    /// PC one past the last instruction — reaching it ends a run.
    pub fn exit_pc(&self) -> u64 {
        self.exit_pc
    }

    /// The pre-decoded code table, shared by every execution way.
    pub fn predecoded(&self) -> &Arc<PreDecoded> {
        &self.predecoded
    }

    /// Starts a functional run capped at `max_insts` retired instructions.
    pub fn run(&self, max_insts: u64) -> WorkloadRun {
        WorkloadRun {
            st: self.initial.clone(),
            mem: self.image.clone(),
            exit_pc: self.exit_pc,
            executed: 0,
            cap: max_insts,
            undo: None,
            console: Vec::new(),
            predecoded: Arc::clone(&self.predecoded),
        }
    }
}

/// A functional execution of a [`Workload`]: the oracle that feeds the
/// big-core timing model and the DEU.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    st: ArchState,
    mem: SparseMemory,
    exit_pc: u64,
    executed: u64,
    cap: u64,
    /// Write journal for rollback (recovery-enabled runs only).
    undo: Option<UndoLog>,
    /// Console bytes from `putchar` syscalls, tagged with the retirement
    /// index that produced each byte so a rollback can truncate exactly.
    console: Vec<(u64, u8)>,
    predecoded: Arc<PreDecoded>,
}

impl WorkloadRun {
    /// Executes and returns the next instruction, or `None` at the cap or
    /// program exit.
    ///
    /// # Panics
    ///
    /// Panics if the generated program traps — generated programs are
    /// trap-free by construction, so a trap is a generator bug.
    pub fn next_retired(&mut self) -> Option<Retired> {
        if self.executed >= self.cap || self.st.pc == self.exit_pc {
            return None;
        }
        let stepped = match &mut self.undo {
            Some(log) => {
                let mut bus = JournaledMem::new(&mut self.mem, log, self.executed + 1);
                step_predecoded(&mut self.st, &mut bus, &self.predecoded)
            }
            None => step_predecoded(&mut self.st, &mut self.mem, &self.predecoded),
        };
        match stepped {
            Ok(r) => {
                self.executed += 1;
                if let Some(meek_isa::Syscall::Putchar { byte }) = r.syscall {
                    self.console.push((self.executed, byte));
                }
                Some(r)
            }
            Err(Trap::IllegalInstruction { pc, word }) => {
                panic!("generated program trapped at {pc:#x} (word {word:#010x})")
            }
        }
    }

    /// Instructions retired so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Turns on write journaling so the run becomes rewindable. Must be
    /// enabled before execution starts — a journal that misses early
    /// writes cannot rewind through them.
    ///
    /// # Panics
    ///
    /// Panics if any instruction has already executed.
    pub fn enable_undo(&mut self) {
        assert_eq!(self.executed, 0, "undo journaling must be enabled before execution");
        self.undo = Some(UndoLog::new());
    }

    /// Whether write journaling is active.
    pub fn undo_enabled(&self) -> bool {
        self.undo.is_some()
    }

    /// Current undo-journal footprint in modelled bytes (0 when
    /// journaling is off).
    pub fn undo_bytes(&self) -> u64 {
        self.undo.as_ref().map_or(0, UndoLog::bytes)
    }

    /// High-water mark of the undo-journal footprint.
    pub fn undo_peak_bytes(&self) -> u64 {
        self.undo.as_ref().map_or(0, UndoLog::peak_bytes)
    }

    /// Releases journal entries for instructions at or before
    /// `commit_index` — their checkpoint has verified, so no rollback
    /// can reach past them anymore.
    pub fn release_undo_through(&mut self, commit_index: u64) {
        if let Some(log) = &mut self.undo {
            log.release_through(commit_index);
        }
    }

    /// Rewinds the run to the state it had after `commit_index`
    /// instructions: memory through the undo journal, registers and PC
    /// from `cp`, CSRs from `csrs`. Execution resumes from there and
    /// deterministically re-retires the squashed instructions.
    ///
    /// # Panics
    ///
    /// Panics if journaling is off, if the run has not reached
    /// `commit_index` yet, or if the journal was already released past
    /// the target.
    pub fn rollback(&mut self, commit_index: u64, cp: &RegCheckpoint, csrs: BTreeMap<u16, u64>) {
        assert!(
            self.executed >= commit_index,
            "cannot roll forward: executed {} < target {commit_index}",
            self.executed
        );
        let log = self.undo.as_mut().expect("rollback requires undo journaling");
        log.rewind(&mut self.mem, commit_index);
        self.st.apply_checkpoint(cp);
        self.st.restore_csr_snapshot(csrs);
        self.st.set_instret(commit_index);
        self.console.retain(|&(idx, _)| idx <= commit_index);
        self.executed = commit_index;
    }

    /// The run's functional memory (final-state oracles compare this
    /// against a golden re-execution).
    pub fn memory(&self) -> &SparseMemory {
        &self.mem
    }

    /// The architectural state before the first instruction — checkpoint
    /// 0, the SRCP of segment 1.
    pub fn initial_checkpoint(&self) -> RegCheckpoint {
        if self.executed == 0 {
            self.st.checkpoint()
        } else {
            panic!("initial_checkpoint must be taken before execution starts")
        }
    }

    /// Current architectural state (for end-of-run assertions).
    pub fn state(&self) -> &ArchState {
        &self.st
    }

    /// The console bytes emitted by `putchar` syscalls so far, in
    /// retirement order. Bytes from instructions squashed by a rollback
    /// are gone — the console reflects the committed stream only.
    pub fn console(&self) -> Vec<u8> {
        self.console.iter().map(|&(_, b)| b).collect()
    }
}

struct Generator<'p> {
    profile: &'p BenchmarkProfile,
    rng: SmallRng,
    prog: Vec<Inst>,
    counts: [u64; 9],
    mask: u64,
    chain_idx: usize,
    fp_chain_idx: usize,
    rand_uses: u32,
    stream_imm: i32,
    has_fp: bool,
    /// Error-diffusion accumulators: keep branch composition exact
    /// rather than seed-dependent (predictable fraction, taken bias).
    acc_predictable: f64,
    acc_taken: f64,
}

impl<'p> Generator<'p> {
    fn new(profile: &'p BenchmarkProfile, seed: u64) -> Generator<'p> {
        let mask = (profile.working_set.next_power_of_two() - 1) & !7;
        let m = &profile.mix;
        Generator {
            profile,
            rng: SmallRng::seed_from_u64(seed ^ 0x5EED_0E7A),
            prog: Vec::new(),
            counts: [0; 9],
            mask,
            chain_idx: 0,
            fp_chain_idx: 0,
            rand_uses: 0,
            stream_imm: 0,
            has_fp: m.fp_add + m.fp_mul + m.fp_div > 0.0,
            acc_predictable: 0.0,
            acc_taken: 0.0,
        }
    }

    fn target(&self, c: Class) -> f64 {
        let m = &self.profile.mix;
        match c {
            Class::Alu => m.alu(),
            Class::Load => m.load,
            Class::Store => m.store,
            Class::Branch => m.branch,
            Class::Mul => m.mul,
            Class::Div => m.div,
            Class::FpAdd => m.fp_add,
            Class::FpMul => m.fp_mul,
            Class::FpDiv => m.fp_div,
        }
    }

    fn emit(&mut self, c: Class, inst: Inst) {
        self.prog.push(inst);
        self.counts[CLASSES.iter().position(|&x| x == c).expect("class listed")] += 1;
    }

    fn load_const(&mut self, rd: Reg, val: u64) {
        assert!(val < 0x7FFF_F800, "constant {val:#x} out of li range");
        let lo = ((val & 0xFFF) as i32) << 20 >> 20;
        let hi = (val.wrapping_sub(lo as i64 as u64) >> 12) as i32;
        if hi != 0 {
            self.emit(Class::Alu, Inst::Lui { rd, imm: hi });
            if lo != 0 {
                self.emit(Class::Alu, Inst::AluImm { op: AluImmOp::Addi, rd, rs1: rd, imm: lo });
            }
        } else {
            self.emit(Class::Alu, Inst::AluImm { op: AluImmOp::Addi, rd, rs1: Reg::X0, imm: lo });
        }
    }

    fn chain(&mut self) -> Reg {
        self.chain_idx = (self.chain_idx + 1) % CHAIN.len();
        CHAIN[self.chain_idx]
    }

    fn fp_chain(&mut self) -> FReg {
        self.fp_chain_idx = (self.fp_chain_idx + 1) % 4;
        FReg::new(self.fp_chain_idx as u8)
    }

    /// xorshift64 update of the pseudo-random state (6 ALU instructions).
    fn emit_xorshift(&mut self) {
        for (op, sh) in [(AluImmOp::Slli, 13), (AluImmOp::Srli, 7), (AluImmOp::Slli, 17)] {
            self.emit(Class::Alu, Inst::AluImm { op, rd: R_TMP, rs1: R_XS, imm: sh });
            self.emit(Class::Alu, Inst::Alu { op: AluOp::Xor, rd: R_XS, rs1: R_XS, rs2: R_TMP });
        }
    }

    /// Produces the pointer register for one memory access, emitting any
    /// pointer-maintenance instructions.
    fn mem_ptr(&mut self) -> Reg {
        if self.rng.gen_bool(self.profile.random_access) {
            self.rand_uses += 1;
            if self.rand_uses % 8 == 1 {
                // Re-point the random pointer: xorshift, mask, rebase.
                // Real applications exhibit tiered working-set locality
                // (the classic hot/warm/cold decomposition): most
                // scattered accesses land in an L1-resident hot set, most
                // of the rest in an L2-resident warm set, and only a thin
                // tail walks the full working set.
                let roll: f64 = self.rng.gen();
                let mask = if roll < 0.85 {
                    R_HOTMASK
                } else if roll < 0.98 {
                    R_MIDMASK
                } else {
                    R_MASK
                };
                self.emit_xorshift();
                self.emit(
                    Class::Alu,
                    Inst::Alu { op: AluOp::And, rd: R_TMP, rs1: R_XS, rs2: mask },
                );
                self.emit(
                    Class::Alu,
                    Inst::Alu { op: AluOp::Add, rd: R_RANDPTR, rs1: R_BASE, rs2: R_TMP },
                );
            }
            R_RANDPTR
        } else {
            self.stream_imm += 8;
            if self.stream_imm >= 2040 {
                self.stream_imm = 0;
                // Advance and wrap the streaming pointer within the set.
                self.emit(
                    Class::Alu,
                    Inst::AluImm {
                        op: AluImmOp::Addi,
                        rd: R_STREAMPTR,
                        rs1: R_STREAMPTR,
                        imm: 2040,
                    },
                );
                self.emit(
                    Class::Alu,
                    Inst::Alu { op: AluOp::Sub, rd: R_TMP, rs1: R_STREAMPTR, rs2: R_BASE },
                );
                self.emit(
                    Class::Alu,
                    Inst::Alu { op: AluOp::And, rd: R_TMP, rs1: R_TMP, rs2: R_MASK },
                );
                self.emit(
                    Class::Alu,
                    Inst::Alu { op: AluOp::Add, rd: R_STREAMPTR, rs1: R_BASE, rs2: R_TMP },
                );
            }
            R_STREAMPTR
        }
    }

    fn mem_imm(&mut self, ptr: Reg) -> i32 {
        if ptr == R_STREAMPTR {
            self.stream_imm
        } else {
            self.rng.gen_range(0..255) * 8
        }
    }

    fn emit_class(&mut self, c: Class) {
        match c {
            Class::Alu => {
                let rd = self.chain();
                let rs1 = CHAIN[self.rng.gen_range(0..CHAIN.len())];
                let rs2 = CHAIN[self.rng.gen_range(0..CHAIN.len())];
                let imm = self.rng.gen_range(-2048..2048);
                let inst = match self.rng.gen_range(0..6) {
                    0 => Inst::Alu { op: AluOp::Add, rd, rs1, rs2: R_XS },
                    1 => Inst::Alu { op: AluOp::Xor, rd, rs1, rs2 },
                    2 => Inst::AluImm { op: AluImmOp::Addi, rd, rs1, imm },
                    3 => Inst::Alu { op: AluOp::Sub, rd, rs1, rs2 },
                    4 => Inst::AluImm { op: AluImmOp::Xori, rd, rs1, imm },
                    _ => Inst::Alu { op: AluOp::Or, rd, rs1, rs2 },
                };
                self.emit(c, inst);
            }
            Class::Load => {
                let ptr = self.mem_ptr();
                let imm = self.mem_imm(ptr);
                if self.has_fp && self.rng.gen_bool(0.3) {
                    let rd = self.fp_chain();
                    self.emit(c, Inst::Fld { rd, rs1: ptr, offset: imm });
                } else {
                    let rd = self.chain();
                    self.emit(c, Inst::Load { op: LoadOp::Ld, rd, rs1: ptr, offset: imm });
                }
            }
            Class::Store => {
                let ptr = self.mem_ptr();
                let imm = self.mem_imm(ptr);
                if self.has_fp && self.rng.gen_bool(0.3) {
                    let rs2 = self.fp_chain();
                    self.emit(c, Inst::Fsd { rs1: ptr, rs2, offset: imm });
                } else {
                    let rs2 = CHAIN[self.rng.gen_range(0..CHAIN.len())];
                    self.emit(c, Inst::Store { op: StoreOp::Sd, rs1: ptr, rs2, offset: imm });
                }
            }
            Class::Branch => {
                // All conditional branches target the next instruction, so
                // direction varies (exercising the predictor) while the
                // dynamic path stays linear. Composition is error-diffused
                // rather than sampled, so a profile's branch behaviour —
                // and therefore the big core's IPC — does not wander with
                // the generation seed.
                self.acc_predictable += self.profile.branch_predictability;
                if self.acc_predictable >= 1.0 {
                    self.acc_predictable -= 1.0;
                    self.acc_taken += 0.7;
                    let op = if self.acc_taken >= 1.0 {
                        self.acc_taken -= 1.0;
                        BranchOp::Beq // always taken
                    } else {
                        BranchOp::Bne // never taken
                    };
                    self.emit(c, Inst::Branch { op, rs1: Reg::X0, rs2: Reg::X0, offset: 4 });
                } else {
                    let rs1 = CHAIN[self.rng.gen_range(0..CHAIN.len())];
                    let rs2 = CHAIN[self.rng.gen_range(0..CHAIN.len())];
                    self.emit(c, Inst::Branch { op: BranchOp::Blt, rs1, rs2, offset: 4 });
                }
            }
            Class::Mul => {
                let rd = self.chain();
                let rs1 = CHAIN[self.rng.gen_range(0..CHAIN.len())];
                self.emit(c, Inst::MulDiv { op: MulDivOp::Mul, rd, rs1, rs2: R_XS });
            }
            Class::Div => {
                let rd = self.chain();
                let rs1 = CHAIN[self.rng.gen_range(0..CHAIN.len())];
                self.emit(c, Inst::MulDiv { op: MulDivOp::Div, rd, rs1, rs2: R_DIVISOR });
            }
            Class::FpAdd => {
                let rd = self.fp_chain();
                let rs1 = FReg::new(self.rng.gen_range(0..4));
                self.emit(c, Inst::Fp { op: FpOp::FaddD, rd, rs1, rs2: FReg::new(4) });
            }
            Class::FpMul => {
                let rd = self.fp_chain();
                let rs1 = FReg::new(self.rng.gen_range(0..4));
                self.emit(c, Inst::Fp { op: FpOp::FmulD, rd, rs1, rs2: FReg::new(4) });
            }
            Class::FpDiv => {
                let rd = self.fp_chain();
                let rs1 = FReg::new(self.rng.gen_range(0..4));
                self.emit(c, Inst::Fp { op: FpOp::FdivD, rd, rs1, rs2: FReg::new(5) });
            }
        }
    }

    fn generate(mut self) -> Workload {
        // ---- Preamble ----
        self.load_const(R_BASE, DATA_BASE);
        let xs_seed = (0x2545_F491 ^ (self.rng.gen::<u32>() as u64 | 1)) & 0x3FFF_FFFF | 1;
        self.load_const(R_XS, xs_seed);
        self.load_const(R_MASK, self.mask.min(0x7FFF_F000));
        let hot_mask = (self.mask.min(16 * 1024 - 1)) & !7;
        self.load_const(R_HOTMASK, hot_mask);
        let mid_mask = (self.mask.min(256 * 1024 - 1)) & !7;
        self.load_const(R_MIDMASK, mid_mask);
        self.emit(
            Class::Alu,
            Inst::AluImm { op: AluImmOp::Addi, rd: R_DIVISOR, rs1: Reg::X0, imm: 3 },
        );
        self.emit(
            Class::Alu,
            Inst::Alu { op: AluOp::Add, rd: R_RANDPTR, rs1: R_BASE, rs2: Reg::X0 },
        );
        self.emit(
            Class::Alu,
            Inst::Alu { op: AluOp::Add, rd: R_STREAMPTR, rs1: R_BASE, rs2: Reg::X0 },
        );
        // Loop counter: effectively unbounded; the run cap governs length.
        self.load_const(R_LOOP, 0x0FFF_FFFF);
        // FP constant pool + chain seeds.
        self.load_const(R_TMP, FP_CONST_BASE);
        for i in 0..6u8 {
            self.emit(
                Class::Load,
                Inst::Fld { rd: FReg::new(i), rs1: R_TMP, offset: (i as i32) * 8 },
            );
        }
        // Seed integer chain registers from the xorshift state.
        for (i, &r) in CHAIN.iter().enumerate() {
            self.emit(
                Class::Alu,
                Inst::AluImm { op: AluImmOp::Addi, rd: r, rs1: R_XS, imm: (i as i32 + 1) * 97 },
            );
        }

        // ---- Loop body (deficit-driven class selection) ----
        let body_start = self.prog.len();
        let footprint = self.profile.code_footprint as usize;
        let syscall_p = self.profile.syscall_per_10k as f64 / 10_000.0;
        let mut emitted_ecall = false;
        while self.prog.len() - body_start < footprint {
            let total: u64 = self.counts.iter().sum();
            let mut best = Class::Alu;
            let mut best_deficit = f64::MIN;
            for &c in &CLASSES {
                let i = CLASSES.iter().position(|&x| x == c).expect("listed");
                if self.target(c) <= 0.0 {
                    continue;
                }
                // Relative shortfall: normalising by the target keeps the
                // support-instruction overshoot (booked to ALU) from
                // starving low-frequency classes like stores.
                let t = self.target(c);
                let deficit = (t * (total + 1) as f64 - self.counts[i] as f64) / t;
                if deficit > best_deficit {
                    best_deficit = deficit;
                    best = c;
                }
            }
            self.emit_class(best);
            if syscall_p > 0.0 && self.rng.gen_bool(syscall_p) {
                self.prog.push(Inst::Ecall);
                emitted_ecall = true;
            }
            // Periodically fold fresh entropy into the integer chain.
            if self.prog.len().is_multiple_of(64) {
                self.emit_xorshift();
                let rd = self.chain();
                self.emit(Class::Alu, Inst::Alu { op: AluOp::Add, rd, rs1: rd, rs2: R_XS });
            }
        }

        if syscall_p > 0.0 && !emitted_ecall {
            // Guarantee the configured kernel-trap behaviour appears.
            self.prog.push(Inst::Ecall);
        }

        // ---- Loop control ----
        // counter -= 1; exit when zero (skip the back-jump); else jump back.
        self.emit(
            Class::Alu,
            Inst::AluImm { op: AluImmOp::Addi, rd: R_LOOP, rs1: R_LOOP, imm: -1 },
        );
        self.prog.push(Inst::Branch { op: BranchOp::Beq, rs1: R_LOOP, rs2: Reg::X0, offset: 8 });
        let back = (body_start as i64 - self.prog.len() as i64) * 4;
        assert!(back >= -(1 << 20), "loop body too large for a J-type back-jump ({back})");
        self.prog.push(Inst::Jal { rd: Reg::X0, offset: back as i32 });

        // ---- Assemble the image ----
        let words: Vec<u32> = self.prog.iter().map(encode).collect();
        let mut image = SparseMemory::new();
        image.load_program(CODE_BASE, &words);
        // FP constant pool: two near-one constants + four chain seeds.
        for (i, v) in [1.0000003f64, 1.0000007, 1.5, 2.25, 3.5, 0.75].iter().enumerate() {
            image.write(FP_CONST_BASE + 8 * i as u64, 8, v.to_bits());
        }
        // Initialise the head of the working set with pseudo-random data.
        let mut xs = 0x9E37_79B9_7F4A_7C15u64 | 1;
        let init_len = self.profile.working_set.min(256 * 1024);
        for off in (0..init_len).step_by(8) {
            xs ^= xs << 13;
            xs ^= xs >> 7;
            xs ^= xs << 17;
            image.write(DATA_BASE + off, 8, xs);
        }

        let initial = ArchState::new(CODE_BASE);
        Workload::from_image(
            self.profile.name,
            image,
            CODE_BASE,
            CODE_BASE + 4 * words.len() as u64,
            words.len(),
            initial,
        )
        .with_data_window(DATA_BASE, self.profile.working_set.next_power_of_two())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{parsec3, spec_int_2006};
    use meek_isa::ExecClass;
    use std::collections::HashMap;

    fn class_histogram(profile: &BenchmarkProfile, n: u64) -> (HashMap<&'static str, u64>, u64) {
        let wl = Workload::build(profile, 7);
        let mut run = wl.run(n);
        let mut h: HashMap<&'static str, u64> = HashMap::new();
        let mut total = 0;
        while let Some(r) = run.next_retired() {
            let key = match r.class {
                ExecClass::IntAlu => "alu",
                ExecClass::Load => "load",
                ExecClass::Store => "store",
                ExecClass::Branch => "branch",
                ExecClass::IntMul => "mul",
                ExecClass::IntDiv => "div",
                ExecClass::FpAdd => "fp_add",
                ExecClass::FpMul => "fp_mul",
                ExecClass::FpDiv => "fp_div",
                ExecClass::Jump => "jump",
                ExecClass::Csr => "csr",
                ExecClass::System => "system",
                ExecClass::Meek => "meek",
            };
            *h.entry(key).or_default() += 1;
            total += 1;
        }
        (h, total)
    }

    #[test]
    fn all_profiles_generate_and_run() {
        for p in spec_int_2006().into_iter().chain(parsec3()) {
            let wl = Workload::build(&p, 1);
            let mut run = wl.run(20_000);
            let mut n = 0;
            while run.next_retired().is_some() {
                n += 1;
            }
            assert_eq!(n, 20_000, "{} must run to the cap without trapping", p.name);
        }
    }

    #[test]
    fn deterministic_generation() {
        let p = &parsec3()[0];
        let a = Workload::build(p, 99);
        let b = Workload::build(p, 99);
        assert_eq!(a.static_len, b.static_len);
        let mut ra = a.run(5_000);
        let mut rb = b.run(5_000);
        loop {
            match (ra.next_retired(), rb.next_retired()) {
                (None, None) => break,
                (x, y) => assert_eq!(x, y),
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let p = &parsec3()[0];
        let a = Workload::build(p, 1);
        let b = Workload::build(p, 2);
        let wa: Vec<u32> = (0..64).map(|i| a.image().peek_inst(CODE_BASE + 4 * i)).collect();
        let wb: Vec<u32> = (0..64).map(|i| b.image().peek_inst(CODE_BASE + 4 * i)).collect();
        assert_ne!(wa, wb);
    }

    #[test]
    fn realized_mix_tracks_profile() {
        for p in [&spec_int_2006()[3] /* mcf */, &parsec3()[7] /* swaptions */] {
            let (h, total) = class_histogram(p, 60_000);
            let frac = |k: &str| *h.get(k).unwrap_or(&0) as f64 / total as f64;
            assert!(
                (frac("load") - p.mix.load).abs() < 0.06,
                "{}: load {:.3} vs target {:.3}",
                p.name,
                frac("load"),
                p.mix.load
            );
            assert!(
                (frac("store") - p.mix.store).abs() < 0.05,
                "{}: store {:.3} vs target {:.3}",
                p.name,
                frac("store"),
                p.mix.store
            );
            assert!(
                (frac("branch") - p.mix.branch).abs() < 0.05,
                "{}: branch {:.3} vs target {:.3}",
                p.name,
                frac("branch"),
                p.mix.branch
            );
            if p.mix.div > 0.0 {
                assert!(frac("div") > 0.0, "{}: expected divides", p.name);
            }
        }
    }

    #[test]
    fn swaptions_divides_dominate_suite() {
        let profiles = parsec3();
        let mut div_fracs: Vec<(&str, f64)> = profiles
            .iter()
            .map(|p| {
                let (h, total) = class_histogram(p, 30_000);
                let d = (*h.get("div").unwrap_or(&0) + *h.get("fp_div").unwrap_or(&0)) as f64;
                (p.name, d / total as f64)
            })
            .collect();
        div_fracs.sort_by(|a, b| b.1.total_cmp(&a.1));
        assert_eq!(div_fracs[0].0, "swaptions", "ranking: {div_fracs:?}");
    }

    #[test]
    fn memory_accesses_stay_in_working_set() {
        let p = &spec_int_2006()[3]; // mcf, 64 MB WS
        let wl = Workload::build(p, 5);
        let mut run = wl.run(30_000);
        let span = p.working_set.next_power_of_two();
        while let Some(r) = run.next_retired() {
            if let Some(m) = r.mem {
                if m.addr >= FP_CONST_BASE && m.addr < FP_CONST_BASE + 64 {
                    continue; // constant pool
                }
                assert!(
                    m.addr >= DATA_BASE && m.addr < DATA_BASE + span,
                    "access {:#x} outside working set",
                    m.addr
                );
            }
        }
    }

    #[test]
    fn syscalls_appear_when_configured() {
        let p = parsec3().into_iter().find(|p| p.name == "dedup").unwrap();
        let wl = Workload::build(&p, 3);
        let mut run = wl.run(50_000);
        let mut traps = 0;
        while let Some(r) = run.next_retired() {
            if r.is_kernel_trap {
                traps += 1;
            }
        }
        assert!(traps > 0, "dedup profile must hit kernel traps");
    }

    #[test]
    fn initial_checkpoint_before_run_only() {
        let p = &parsec3()[0];
        let wl = Workload::build(p, 1);
        let run = wl.run(100);
        let cp = run.initial_checkpoint();
        assert_eq!(cp.pc, CODE_BASE);
    }
}
