//! Per-benchmark profiles for SPECint 2006 and PARSEC 3.
//!
//! The numbers are drawn from published characterisations of the suites
//! (instruction mixes, branch behaviour, working sets). They are
//! deliberately coarse — the paper's results depend on *relative*
//! behaviours (swaptions' division density, mcf's memory-boundedness,
//! libquantum's streaming predictability), which these profiles preserve.

/// Which benchmark suite a profile belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECint 2006 (12 integer benchmarks).
    SpecInt2006,
    /// PARSEC 3.0 with the simmedium dataset (8 benchmarks).
    Parsec3,
}

/// Dynamic instruction mix (fractions of retired instructions). The
/// remainder after all listed classes is plain integer ALU work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstMix {
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
    /// Conditional branches.
    pub branch: f64,
    /// Integer multiplies.
    pub mul: f64,
    /// Integer divides.
    pub div: f64,
    /// FP add/sub.
    pub fp_add: f64,
    /// FP multiplies.
    pub fp_mul: f64,
    /// FP divides.
    pub fp_div: f64,
}

impl InstMix {
    /// Fraction left for plain ALU instructions.
    ///
    /// # Panics
    ///
    /// Panics if the listed fractions exceed 1.
    pub fn alu(&self) -> f64 {
        let used = self.load
            + self.store
            + self.branch
            + self.mul
            + self.div
            + self.fp_add
            + self.fp_mul
            + self.fp_div;
        assert!(used <= 1.0, "instruction mix exceeds 100% ({used})");
        1.0 - used
    }

    /// Fraction of memory instructions (loads + stores).
    pub fn mem(&self) -> f64 {
        self.load + self.store
    }
}

/// A benchmark profile: everything the generator needs to synthesise a
/// program with this benchmark's dynamic character.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name as it appears in the paper's figures.
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Dynamic instruction mix.
    pub mix: InstMix,
    /// Fraction of conditional branches that follow learnable patterns
    /// (the rest are data-driven and effectively random).
    pub branch_predictability: f64,
    /// Data working-set size in bytes.
    pub working_set: u64,
    /// Fraction of memory accesses that are randomly scattered over the
    /// working set (the rest stream sequentially).
    pub random_access: f64,
    /// Static instructions in the main loop (instruction footprint).
    pub code_footprint: u32,
    /// ECALLs (kernel traps → forced RCPs) per 10 000 instructions.
    pub syscall_per_10k: u32,
    /// Whether Nzdc's compiler pass handles this benchmark (the paper
    /// reports compile failures on gcc, omnetpp, xalancbmk, freqmine).
    pub nzdc_compilable: bool,
}

macro_rules! mix {
    (l $l:expr, s $s:expr, b $b:expr $(, mul $m:expr)? $(, div $d:expr)?
     $(, fa $fa:expr)? $(, fm $fm:expr)? $(, fd $fd:expr)?) => {{
        #[allow(unused_mut)]
        let mut m = InstMix {
            load: $l, store: $s, branch: $b,
            mul: 0.0, div: 0.0, fp_add: 0.0, fp_mul: 0.0, fp_div: 0.0,
        };
        $(m.mul = $m;)?
        $(m.div = $d;)?
        $(m.fp_add = $fa;)?
        $(m.fp_mul = $fm;)?
        $(m.fp_div = $fd;)?
        m
    }};
}

const MB: u64 = 1024 * 1024;

/// The 12 SPECint 2006 benchmark profiles.
pub fn spec_int_2006() -> Vec<BenchmarkProfile> {
    use Suite::SpecInt2006 as S;
    vec![
        BenchmarkProfile {
            name: "perlbench",
            suite: S,
            mix: mix!(l 0.24, s 0.11, b 0.21, mul 0.005, div 0.001),
            branch_predictability: 0.94,
            working_set: 8 * MB,
            random_access: 0.50,
            code_footprint: 12_000,
            syscall_per_10k: 0,
            nzdc_compilable: true,
        },
        BenchmarkProfile {
            name: "bzip2",
            suite: S,
            mix: mix!(l 0.26, s 0.09, b 0.15, mul 0.01),
            branch_predictability: 0.89,
            working_set: 4 * MB,
            random_access: 0.35,
            code_footprint: 3_000,
            syscall_per_10k: 0,
            nzdc_compilable: true,
        },
        BenchmarkProfile {
            name: "gcc",
            suite: S,
            mix: mix!(l 0.25, s 0.13, b 0.20, mul 0.004),
            branch_predictability: 0.91,
            working_set: 16 * MB,
            random_access: 0.50,
            code_footprint: 16_000,
            syscall_per_10k: 0,
            nzdc_compilable: false,
        },
        BenchmarkProfile {
            name: "mcf",
            suite: S,
            mix: mix!(l 0.31, s 0.09, b 0.19),
            branch_predictability: 0.90,
            working_set: 64 * MB,
            random_access: 0.85,
            code_footprint: 1_500,
            syscall_per_10k: 0,
            nzdc_compilable: true,
        },
        BenchmarkProfile {
            name: "gobmk",
            suite: S,
            mix: mix!(l 0.20, s 0.14, b 0.20, mul 0.006),
            branch_predictability: 0.86,
            working_set: 2 * MB,
            random_access: 0.40,
            code_footprint: 10_000,
            syscall_per_10k: 0,
            nzdc_compilable: true,
        },
        BenchmarkProfile {
            name: "hmmer",
            suite: S,
            mix: mix!(l 0.28, s 0.16, b 0.08, mul 0.01),
            branch_predictability: 0.97,
            working_set: MB,
            random_access: 0.10,
            code_footprint: 2_000,
            syscall_per_10k: 0,
            nzdc_compilable: true,
        },
        BenchmarkProfile {
            name: "sjeng",
            suite: S,
            mix: mix!(l 0.21, s 0.08, b 0.21, mul 0.005),
            branch_predictability: 0.88,
            working_set: 2 * MB,
            random_access: 0.45,
            code_footprint: 6_000,
            syscall_per_10k: 0,
            nzdc_compilable: true,
        },
        BenchmarkProfile {
            name: "libquantum",
            suite: S,
            mix: mix!(l 0.25, s 0.05, b 0.27, mul 0.01),
            branch_predictability: 0.99,
            working_set: 32 * MB,
            random_access: 0.02,
            code_footprint: 800,
            syscall_per_10k: 0,
            nzdc_compilable: true,
        },
        BenchmarkProfile {
            name: "h264ref",
            suite: S,
            mix: mix!(l 0.35, s 0.15, b 0.08, mul 0.02),
            branch_predictability: 0.95,
            working_set: MB,
            random_access: 0.20,
            code_footprint: 6_000,
            syscall_per_10k: 0,
            nzdc_compilable: true,
        },
        BenchmarkProfile {
            name: "omnetpp",
            suite: S,
            mix: mix!(l 0.30, s 0.17, b 0.20),
            branch_predictability: 0.92,
            working_set: 32 * MB,
            random_access: 0.80,
            code_footprint: 10_000,
            syscall_per_10k: 0,
            nzdc_compilable: false,
        },
        BenchmarkProfile {
            name: "astar",
            suite: S,
            mix: mix!(l 0.27, s 0.05, b 0.16),
            branch_predictability: 0.88,
            working_set: 16 * MB,
            random_access: 0.70,
            code_footprint: 2_500,
            syscall_per_10k: 0,
            nzdc_compilable: true,
        },
        BenchmarkProfile {
            name: "xalancbmk",
            suite: S,
            mix: mix!(l 0.30, s 0.09, b 0.25),
            branch_predictability: 0.93,
            working_set: 16 * MB,
            random_access: 0.60,
            code_footprint: 14_000,
            syscall_per_10k: 0,
            nzdc_compilable: false,
        },
    ]
}

/// The 8 PARSEC 3 benchmark profiles (simmedium-scaled working sets).
pub fn parsec3() -> Vec<BenchmarkProfile> {
    use Suite::Parsec3 as P;
    vec![
        BenchmarkProfile {
            name: "blackscholes",
            suite: P,
            mix: mix!(l 0.25, s 0.08, b 0.08, fa 0.18, fm 0.14, fd 0.010),
            branch_predictability: 0.97,
            working_set: 2 * MB,
            random_access: 0.10,
            code_footprint: 1_200,
            syscall_per_10k: 0,
            nzdc_compilable: true,
        },
        BenchmarkProfile {
            name: "bodytrack",
            suite: P,
            mix: mix!(l 0.26, s 0.09, b 0.13, fa 0.10, fm 0.08, fd 0.004),
            branch_predictability: 0.93,
            working_set: 8 * MB,
            random_access: 0.35,
            code_footprint: 5_000,
            syscall_per_10k: 0,
            nzdc_compilable: true,
        },
        BenchmarkProfile {
            name: "dedup",
            suite: P,
            mix: mix!(l 0.27, s 0.15, b 0.16, mul 0.02),
            branch_predictability: 0.92,
            working_set: 16 * MB,
            random_access: 0.50,
            code_footprint: 4_000,
            syscall_per_10k: 2,
            nzdc_compilable: true,
        },
        BenchmarkProfile {
            name: "ferret",
            suite: P,
            mix: mix!(l 0.29, s 0.10, b 0.14, fa 0.06, fm 0.05),
            branch_predictability: 0.92,
            working_set: 24 * MB,
            random_access: 0.55,
            code_footprint: 6_000,
            syscall_per_10k: 1,
            nzdc_compilable: true,
        },
        BenchmarkProfile {
            name: "fluidanimate",
            suite: P,
            mix: mix!(l 0.27, s 0.10, b 0.10, fa 0.14, fm 0.11, fd 0.006),
            branch_predictability: 0.94,
            working_set: 8 * MB,
            random_access: 0.30,
            code_footprint: 3_000,
            syscall_per_10k: 0,
            nzdc_compilable: true,
        },
        BenchmarkProfile {
            name: "streamcluster",
            suite: P,
            mix: mix!(l 0.33, s 0.04, b 0.12, fa 0.12, fm 0.10),
            branch_predictability: 0.96,
            working_set: 16 * MB,
            random_access: 0.15,
            code_footprint: 1_500,
            syscall_per_10k: 0,
            nzdc_compilable: true,
        },
        BenchmarkProfile {
            name: "freqmine",
            suite: P,
            mix: mix!(l 0.30, s 0.12, b 0.18),
            branch_predictability: 0.91,
            working_set: 16 * MB,
            random_access: 0.60,
            code_footprint: 8_000,
            syscall_per_10k: 0,
            nzdc_compilable: false,
        },
        BenchmarkProfile {
            name: "swaptions",
            suite: P,
            // The paper's worst case for MEEK: frequent divisions, where
            // the Rocket divider is far weaker than BOOM's (§V-A).
            mix: mix!(l 0.22, s 0.08, b 0.10, mul 0.01, div 0.020, fa 0.13, fm 0.12, fd 0.030),
            branch_predictability: 0.95,
            working_set: MB,
            random_access: 0.20,
            code_footprint: 2_500,
            syscall_per_10k: 0,
            nzdc_compilable: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_complete() {
        assert_eq!(spec_int_2006().len(), 12);
        assert_eq!(parsec3().len(), 8);
    }

    #[test]
    fn mixes_are_valid() {
        for p in spec_int_2006().into_iter().chain(parsec3()) {
            let alu = p.mix.alu();
            assert!(alu > 0.0 && alu < 1.0, "{}: alu fraction {alu}", p.name);
            assert!((0.0..=1.0).contains(&p.branch_predictability), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.random_access), "{}", p.name);
            assert!(p.working_set >= MB, "{}", p.name);
            assert!(p.code_footprint >= 500, "{}", p.name);
        }
    }

    #[test]
    fn nzdc_failures_match_paper() {
        let failing: Vec<&str> = spec_int_2006()
            .into_iter()
            .chain(parsec3())
            .filter(|p| !p.nzdc_compilable)
            .map(|p| p.name)
            .collect();
        assert_eq!(failing, vec!["gcc", "omnetpp", "xalancbmk", "freqmine"]);
    }

    #[test]
    fn swaptions_is_div_heavy() {
        let parsec = parsec3();
        let swaptions = parsec.iter().find(|p| p.name == "swaptions").unwrap();
        for p in &parsec {
            if p.name != "swaptions" {
                assert!(
                    swaptions.mix.div + swaptions.mix.fp_div > p.mix.div + p.mix.fp_div,
                    "swaptions must out-divide {}",
                    p.name
                );
            }
        }
    }
}
