//! Golden-equivalence property suite for the pre-decoded fast path.
//!
//! The PR-7 hot-loop refactor replaced word-at-a-time fetch+decode with
//! a [`PreDecoded`] table lookup in every hot driver. The table path
//! must be an *exact refinement* of the slow path: identical retired
//! records (the trace bytes every downstream oracle consumes),
//! identical final architectural state, and identical final memory —
//! over arbitrary synthesised programs, not just the fixed goldens.
//!
//! [`PreDecoded`]: meek_isa::PreDecoded

use meek_isa::{exec, ArchState};
use meek_workloads::{parsec3, spec_int_2006, BenchmarkProfile, Workload};
use proptest::prelude::*;

/// Dynamic-instruction cap per case; workload main loops iterate far
/// beyond this, so the window exercises preamble and steady state.
const CAP: u64 = 4_000;

fn all_profiles() -> Vec<BenchmarkProfile> {
    spec_int_2006().into_iter().chain(parsec3()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The table-lookup path retires byte-identical records and lands
    /// in the same architectural state as word-at-a-time decode.
    #[test]
    fn predecoded_path_matches_word_decode(pick in 0usize..20, seed in 0u64..1_000_000) {
        let profiles = all_profiles();
        let wl = Workload::build(&profiles[pick], seed);

        // New path: the workload runner steps through the pre-decoded
        // table (falling back to word decode on dynamic targets only).
        let mut fast = wl.run(CAP);

        // Old path: fetch + decode every visit. Generated workloads
        // start from a fresh architectural state at the entry PC.
        let mut st = ArchState::new(wl.entry());
        let mut mem = wl.image().clone();

        let mut steps = 0u64;
        while st.pc != wl.exit_pc() && steps < CAP {
            let slow = exec::step(&mut st, &mut mem)
                .expect("generated programs are trap-free");
            let fast_r = fast.next_retired();
            prop_assert_eq!(
                fast_r.as_ref(),
                Some(&slow),
                "retired record {} diverged ({}/{})",
                steps,
                profiles[pick].name,
                seed
            );
            steps += 1;
        }
        // The fast path must stop exactly where the slow path stopped.
        prop_assert_eq!(fast.next_retired(), None);
        prop_assert_eq!(fast.executed(), steps);
        prop_assert_eq!(fast.state(), &st, "final state diverged");
        prop_assert!(
            fast.memory().content_eq(&mem),
            "final memory diverged ({}/{})",
            profiles[pick].name,
            seed
        );
    }
}
