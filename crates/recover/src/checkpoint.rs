//! The pinned-checkpoint store: per-segment architectural snapshots
//! held until the segment's check verdict drains.
//!
//! Checkpoint `k` is the full architectural state (registers, PC,
//! CSRs) at the commit boundary that opened segment `k`; memory at
//! that boundary is reachable by rewinding the memory undo-log to the
//! checkpoint's commit index. A checkpoint stays pinned until segment
//! `k` — and every earlier segment — has delivered a *pass* verdict;
//! only then can no future rollback target it, and its slice of the
//! undo journal is released with it.

use meek_isa::state::RegCheckpoint;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One pinned checkpoint: everything a rollback needs to restore the
/// big core to the start of segment `seg`.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentCheckpoint {
    /// Segment this checkpoint is the start state of.
    pub seg: u32,
    /// Instructions committed when the checkpoint was cut — the rewind
    /// target for the memory undo-log and the oracle.
    pub commit_index: u64,
    /// Architectural registers and PC.
    pub cp: RegCheckpoint,
    /// CSR file at the boundary (RCPs exclude CSRs; rollback must not).
    pub csrs: BTreeMap<u16, u64>,
}

impl SegmentCheckpoint {
    /// Modelled storage footprint: 65 checkpoint words plus 16 bytes
    /// per pinned CSR (address + value, padded).
    pub fn bytes(&self) -> u64 {
        RegCheckpoint::WORDS as u64 * 8 + self.csrs.len() as u64 * 16
    }
}

/// What [`CheckpointStore::on_verified`] unlocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReleaseOutcome {
    /// Commit index through which the memory undo-log may be released
    /// (`Some` only when at least one checkpoint was unpinned).
    pub release_through: Option<u64>,
    /// Checkpoints unpinned by this verdict.
    pub released: usize,
}

/// Ordered store of pinned checkpoints (segment numbers ascend).
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    pinned: VecDeque<SegmentCheckpoint>,
    /// Segments with a delivered pass verdict whose checkpoints are
    /// still pinned behind an unverified predecessor.
    verified: BTreeSet<u32>,
    /// Running byte total of `pinned` (kept incrementally: callers
    /// sample [`CheckpointStore::bytes`] every cycle).
    cur_bytes: u64,
    peak_bytes: u64,
    peak_pinned: usize,
}

impl CheckpointStore {
    /// An empty store.
    pub fn new() -> CheckpointStore {
        CheckpointStore::default()
    }

    /// Pins the checkpoint opening `cp.seg`. Segments must be pinned in
    /// ascending order; a rollback pops the suffix first.
    pub fn pin(&mut self, cp: SegmentCheckpoint) {
        debug_assert!(
            self.pinned.back().is_none_or(|b| b.seg < cp.seg),
            "checkpoints must be pinned in segment order"
        );
        self.cur_bytes += cp.bytes();
        self.pinned.push_back(cp);
        self.peak_pinned = self.peak_pinned.max(self.pinned.len());
        self.peak_bytes = self.peak_bytes.max(self.cur_bytes);
    }

    /// Number of checkpoints currently pinned.
    pub fn pinned(&self) -> usize {
        self.pinned.len()
    }

    /// Most checkpoints ever pinned at once.
    pub fn peak_pinned(&self) -> usize {
        self.peak_pinned
    }

    /// Modelled storage footprint of all pinned checkpoints.
    pub fn bytes(&self) -> u64 {
        self.cur_bytes
    }

    /// Largest storage footprint the store ever reached.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Records a pass verdict for `seg` and unpins the now-unreachable
    /// prefix: checkpoints release strictly in segment order, so one
    /// slow verdict pins everything behind it (exactly the storage
    /// pressure the high-water mark measures).
    ///
    /// `hold_from` keeps checkpoints at or after that segment pinned
    /// even when verified — a scheduled rollback with depth > 1 may
    /// target a checkpoint whose own segment has already passed, and
    /// releasing it (with its slice of the undo journal) would destroy
    /// the rewind state before the rollback fires. The held verdicts
    /// stay marked and release once the hold lifts.
    pub fn on_verified(&mut self, seg: u32, hold_from: Option<u32>) -> ReleaseOutcome {
        self.verified.insert(seg);
        let mut out = ReleaseOutcome::default();
        while let Some(front) = self.pinned.front() {
            if !self.verified.contains(&front.seg) || hold_from.is_some_and(|h| front.seg >= h) {
                break;
            }
            self.verified.remove(&front.seg);
            let released = self.pinned.pop_front().expect("front exists");
            self.cur_bytes -= released.bytes();
            out.released += 1;
            // Everything up to the *next* pinned checkpoint's commit
            // index is final; without a successor, the released
            // checkpoint's own index bounds what is known-verified.
            out.release_through = Some(match self.pinned.front() {
                Some(next) => next.commit_index,
                None => released.commit_index,
            });
        }
        out
    }

    /// The checkpoint a failure of `failed_seg` rolls back to under
    /// `depth`: the latest pinned checkpoint at or before the failed
    /// segment, stepped back `depth - 1` further where available.
    pub fn target_for(&self, failed_seg: u32, depth: u32) -> Option<&SegmentCheckpoint> {
        let at_or_before = self.pinned.iter().rposition(|c| c.seg <= failed_seg)?;
        let idx = at_or_before.saturating_sub(depth.saturating_sub(1) as usize);
        self.pinned.get(idx)
    }

    /// Executes a rollback to `target_seg`: checkpoints for later
    /// segments are discarded (their segments re-execute and re-pin),
    /// and stale pass verdicts at or after the target are voided.
    /// Returns the target checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if `target_seg` is not pinned — the caller must have
    /// obtained it from [`CheckpointStore::target_for`].
    pub fn rollback_to(&mut self, target_seg: u32) -> SegmentCheckpoint {
        while self.pinned.back().is_some_and(|b| b.seg > target_seg) {
            let dropped = self.pinned.pop_back().expect("back exists");
            self.cur_bytes -= dropped.bytes();
        }
        self.verified.retain(|&s| s < target_seg);
        let target = self.pinned.back().expect("rollback target must be pinned");
        assert_eq!(target.seg, target_seg, "rollback target vanished from the store");
        target.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(seg: u32, commit_index: u64) -> SegmentCheckpoint {
        SegmentCheckpoint {
            seg,
            commit_index,
            cp: RegCheckpoint::zeroed(0x1000 + commit_index * 4),
            csrs: BTreeMap::new(),
        }
    }

    #[test]
    fn release_is_contiguous_in_segment_order() {
        let mut store = CheckpointStore::new();
        for s in 1..=4 {
            store.pin(cp(s, s as u64 * 100));
        }
        // Segment 2 verifies first: nothing releases past unverified 1.
        assert_eq!(store.on_verified(2, None), ReleaseOutcome::default());
        assert_eq!(store.pinned(), 4);
        // Segment 1 verifies: 1 and 2 release; undo is final through
        // checkpoint 3's commit index.
        let out = store.on_verified(1, None);
        assert_eq!(out.released, 2);
        assert_eq!(out.release_through, Some(300));
        assert_eq!(store.pinned(), 2);
    }

    #[test]
    fn last_checkpoint_releases_through_itself() {
        let mut store = CheckpointStore::new();
        store.pin(cp(1, 50));
        let out = store.on_verified(1, None);
        assert_eq!(out.released, 1);
        assert_eq!(out.release_through, Some(50));
        assert_eq!(store.pinned(), 0);
    }

    #[test]
    fn target_respects_depth_and_floor() {
        let mut store = CheckpointStore::new();
        for s in 3..=6 {
            store.pin(cp(s, s as u64 * 100));
        }
        assert_eq!(store.target_for(5, 1).unwrap().seg, 5);
        assert_eq!(store.target_for(5, 2).unwrap().seg, 4);
        assert_eq!(store.target_for(5, 99).unwrap().seg, 3, "depth clamps at the oldest pin");
        assert_eq!(store.target_for(2, 1), None, "nothing pinned at or before segment 2");
    }

    #[test]
    fn rollback_drops_the_suffix_and_voids_stale_passes() {
        let mut store = CheckpointStore::new();
        for s in 1..=5 {
            store.pin(cp(s, s as u64 * 100));
        }
        store.on_verified(3, None); // pinned behind 1 and 2, so still held
        let target = store.rollback_to(3);
        assert_eq!(target.seg, 3);
        assert_eq!(store.pinned(), 3, "checkpoints 4 and 5 dropped");
        // Segment 3's stale pass was voided: verifying 1 and 2 must not
        // release checkpoint 3.
        store.on_verified(1, None);
        let out = store.on_verified(2, None);
        assert!(out.released > 0);
        assert_eq!(store.pinned(), 1);
        assert_eq!(store.target_for(9, 1).unwrap().seg, 3);
    }

    #[test]
    fn hold_pins_a_verified_rollback_target() {
        // The depth >= 2 race: a pending rollback targets checkpoint 4,
        // whose own segment passes while the rollback waits on older
        // verdicts. The hold must keep 4 (and its undo slice) pinned.
        let mut store = CheckpointStore::new();
        for s in 1..=5 {
            store.pin(cp(s, s as u64 * 100));
        }
        store.on_verified(4, Some(4));
        for s in 1..=3 {
            store.on_verified(s, Some(4));
        }
        assert_eq!(store.pinned(), 2, "checkpoints 1-3 release; 4 is held for the rollback");
        let target = store.rollback_to(4);
        assert_eq!(target.seg, 4);
        // After the rollback the hold lifts; 4 re-verifies and releases.
        let out = store.on_verified(4, None);
        assert_eq!(out.released, 1);
        assert_eq!(store.pinned(), 0);
    }

    #[test]
    fn high_water_marks_survive_release() {
        let mut store = CheckpointStore::new();
        for s in 1..=3 {
            store.pin(cp(s, s as u64));
        }
        let bytes = store.bytes();
        store.on_verified(1, None);
        store.on_verified(2, None);
        store.on_verified(3, None);
        assert_eq!(store.bytes(), 0);
        assert_eq!(store.peak_bytes(), bytes);
        assert_eq!(store.peak_pinned(), 3);
    }
}
