//! Recovery policy: the knobs that turn a detection into a survivable
//! event instead of a dead run.

/// Configuration of the checkpoint/rollback/re-execution subsystem.
///
/// The default policy is **disabled** — the detect-only pipeline the
/// paper evaluates. [`RecoveryPolicy::enabled`] gives the full
/// detect→rollback→re-execute→verify loop with production defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Whether detections trigger rollback at all.
    pub enabled: bool,
    /// How many pinned checkpoints before the failed segment's own
    /// start checkpoint the rollback may reach (1 = roll back exactly
    /// to the start of the failed segment). Deeper rollback trades
    /// re-execution work for slack against detection aliasing.
    pub rollback_depth: u32,
    /// Rollbacks allowed per failure episode before the policy
    /// escalates (or gives up): a fault storm that keeps re-failing the
    /// same region must not loop forever.
    pub max_retries: u32,
    /// After `max_retries`, re-execute the region in *golden* mode —
    /// fault injection suppressed until the failing segment verifies —
    /// modelling escalation to a fully-trusted (checker-core) re-run.
    /// When `false`, the episode is abandoned instead and counted in
    /// [`RecoveryReport::unrecovered`].
    ///
    /// [`RecoveryReport::unrecovered`]: crate::RecoveryReport
    pub escalate_to_golden: bool,
    /// Big-core stall cycles modelling the architectural-state restore
    /// (streaming 65 checkpoint words back through the PRF write
    /// ports), charged on top of the pipeline-flush redirect penalty.
    pub restore_cycles: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            enabled: false,
            rollback_depth: 1,
            max_retries: 3,
            escalate_to_golden: true,
            restore_cycles: 24,
        }
    }
}

impl RecoveryPolicy {
    /// The production policy: recovery on, rollback to the failed
    /// segment's start checkpoint, three retries, golden escalation.
    pub fn enabled() -> RecoveryPolicy {
        RecoveryPolicy { enabled: true, ..RecoveryPolicy::default() }
    }

    /// [`RecoveryPolicy::enabled`] with a custom rollback depth.
    pub fn with_depth(depth: u32) -> RecoveryPolicy {
        assert!(depth >= 1, "rollback depth must be at least 1");
        RecoveryPolicy { rollback_depth: depth, ..RecoveryPolicy::enabled() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_detect_only() {
        assert!(!RecoveryPolicy::default().enabled);
        assert!(RecoveryPolicy::enabled().enabled);
        assert_eq!(RecoveryPolicy::with_depth(2).rollback_depth, 2);
    }

    #[test]
    #[should_panic(expected = "rollback depth")]
    fn zero_depth_rejected() {
        let _ = RecoveryPolicy::with_depth(0);
    }
}
