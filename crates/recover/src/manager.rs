//! The recovery state machine: turns segment verdicts into pin /
//! release / rollback decisions.
//!
//! The manager is deliberately system-agnostic: it owns the checkpoint
//! store, the policy and the metrics, and tells the caller *what* to do
//! (schedule a rollback to segment `t`, release the undo journal
//! through commit `c`, lift golden suppression) — the SoC layer owns
//! *how* (squashing the pipeline and fabric, rewinding the oracle,
//! reseeding checkers).

use crate::checkpoint::{CheckpointStore, SegmentCheckpoint};
use crate::policy::RecoveryPolicy;
use crate::report::RecoveryReport;
use meek_isa::state::RegCheckpoint;
use std::collections::BTreeMap;

/// What a fail verdict resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Recovery is disabled (or the failure is not recoverable):
    /// detect-only behaviour.
    Ignored,
    /// A rollback was scheduled; the caller executes it once every
    /// segment older than [`RecoveryManager::pending_target`] has
    /// concluded.
    Scheduled,
    /// The retry budget is exhausted and escalation is off: the
    /// episode is abandoned and counted as unrecovered.
    GiveUp,
}

/// What a pass verdict unlocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerdictOutcome {
    /// Release the memory undo-log through this commit index (their
    /// checkpoints unpinned).
    pub release_through: Option<u64>,
    /// The open failure episode just closed: the re-executed segment
    /// verified. Golden suppression, if any, lifts now.
    pub episode_closed: bool,
    /// Cycle the closed episode's first fail verdict arrived (for
    /// annotating the detections it recovered).
    pub episode_started: Option<u64>,
}

/// An open failure episode: from the first fail verdict to the pass
/// verdict of the (most recently) failed segment.
#[derive(Debug, Clone, Copy)]
struct Episode {
    failed_seg: u32,
    started: u64,
    rollbacks: u32,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    target_seg: u32,
    golden: bool,
}

/// The recovery subsystem's brain, embedded in the SoC.
#[derive(Debug, Clone)]
pub struct RecoveryManager {
    policy: RecoveryPolicy,
    store: CheckpointStore,
    report: RecoveryReport,
    episode: Option<Episode>,
    pending: Option<Pending>,
}

impl RecoveryManager {
    /// A manager for `policy` (inert when the policy is disabled).
    pub fn new(policy: RecoveryPolicy) -> RecoveryManager {
        RecoveryManager {
            policy,
            store: CheckpointStore::new(),
            report: RecoveryReport::default(),
            episode: None,
            pending: None,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Whether the subsystem is active at all.
    pub fn enabled(&self) -> bool {
        self.policy.enabled
    }

    /// Accumulated metrics.
    pub fn report(&self) -> &RecoveryReport {
        &self.report
    }

    /// Pins the checkpoint that opens segment `seg` (no-op when
    /// disabled — detect-only runs pay no checkpoint cost).
    pub fn pin_checkpoint(
        &mut self,
        seg: u32,
        commit_index: u64,
        cp: RegCheckpoint,
        csrs: BTreeMap<u16, u64>,
    ) {
        if !self.policy.enabled {
            return;
        }
        self.store.pin(SegmentCheckpoint { seg, commit_index, cp, csrs });
        self.report.pinned_checkpoints_hwm =
            self.report.pinned_checkpoints_hwm.max(self.store.peak_pinned() as u64);
    }

    /// Samples combined recovery storage (pinned checkpoints + the
    /// caller's undo-journal footprint) into the high-water mark.
    pub fn note_storage(&mut self, undo_bytes: u64) {
        if self.policy.enabled {
            self.report.storage_bytes_hwm =
                self.report.storage_bytes_hwm.max(self.store.bytes() + undo_bytes);
        }
    }

    /// Handles a pass verdict for `seg`.
    pub fn on_verified(&mut self, seg: u32, now: u64) -> VerdictOutcome {
        if !self.policy.enabled {
            return VerdictOutcome::default();
        }
        // A scheduled rollback pins its target (and everything after
        // it) against release: with depth > 1 the target's own segment
        // may already have passed, and releasing it before the
        // rollback fires would destroy the rewind state.
        let hold_from = self.pending.as_ref().map(|p| p.target_seg);
        let mut out = VerdictOutcome {
            release_through: self.store.on_verified(seg, hold_from).release_through,
            ..VerdictOutcome::default()
        };
        if let Some(ep) = self.episode {
            if ep.rollbacks > 0 && seg == ep.failed_seg {
                let latency = now.saturating_sub(ep.started);
                self.report.recovered += 1;
                self.report.recovery_cycles_total += latency;
                self.report.max_recovery_cycles = self.report.max_recovery_cycles.max(latency);
                self.episode = None;
                out.episode_closed = true;
                out.episode_started = Some(ep.started);
            }
        }
        out
    }

    /// Handles a fail verdict for `seg`: opens (or extends) the failure
    /// episode and schedules a rollback, subject to the retry budget.
    pub fn on_failed(&mut self, seg: u32, now: u64) -> FailAction {
        if !self.policy.enabled {
            return FailAction::Ignored;
        }
        let ep =
            self.episode.get_or_insert(Episode { failed_seg: seg, started: now, rollbacks: 0 });
        ep.failed_seg = seg;
        let mut golden = false;
        if ep.rollbacks >= self.policy.max_retries {
            if self.policy.escalate_to_golden {
                golden = true;
                self.report.escalations += 1;
            } else {
                self.report.unrecovered += 1;
                self.episode = None;
                self.pending = None;
                return FailAction::GiveUp;
            }
        }
        let Some(target) = self.store.target_for(seg, self.policy.rollback_depth) else {
            // No reachable checkpoint (should not happen: the failed
            // segment's own start checkpoint is pinned until now).
            self.report.unrecovered += 1;
            self.episode = None;
            self.pending = None;
            return FailAction::GiveUp;
        };
        let target_seg = target.seg;
        self.pending = Some(match self.pending {
            // An earlier failure is already waiting: keep the older
            // (smaller) target; golden escalation sticks.
            Some(p) => {
                Pending { target_seg: p.target_seg.min(target_seg), golden: p.golden || golden }
            }
            None => Pending { target_seg, golden },
        });
        FailAction::Scheduled
    }

    /// The segment a scheduled rollback restores to, if one is waiting.
    /// The caller may execute it once every older segment has concluded
    /// (their verdicts are final and their checkpoints releasable).
    pub fn pending_target(&self) -> Option<u32> {
        self.pending.as_ref().map(|p| p.target_seg)
    }

    /// Executes the scheduled rollback: pops later checkpoints, counts
    /// the squashed instructions, and returns the restore state plus
    /// whether the re-execution runs golden (injection suppressed).
    ///
    /// # Panics
    ///
    /// Panics if no rollback is pending.
    pub fn take_rollback(&mut self, committed: u64) -> (SegmentCheckpoint, bool) {
        let p = self.pending.take().expect("no rollback pending");
        let target = self.store.rollback_to(p.target_seg);
        let ep = self.episode.as_mut().expect("rollback without an open episode");
        if ep.rollbacks > 0 {
            self.report.retries += 1;
        }
        ep.rollbacks += 1;
        self.report.rollbacks += 1;
        self.report.reexecuted_insts += committed.saturating_sub(target.commit_index);
        (target, p.golden)
    }

    /// Whether recovery work is outstanding (a scheduled rollback or an
    /// episode awaiting its pass verdict). The system must not report
    /// completion while this holds.
    pub fn in_flight(&self) -> bool {
        self.pending.is_some() || self.episode.is_some()
    }

    /// Called at drain: an episode that never closed (no verdict could
    /// ever arrive) is abandoned and counted.
    pub fn resolve_at_drain(&mut self) {
        if self.episode.take().is_some() {
            self.report.unrecovered += 1;
        }
        self.pending = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> RecoveryManager {
        let mut m = RecoveryManager::new(RecoveryPolicy::enabled());
        for seg in 1..=4 {
            m.pin_checkpoint(seg, seg as u64 * 100, RegCheckpoint::zeroed(0), BTreeMap::new());
        }
        m
    }

    #[test]
    fn fail_schedules_and_pass_closes_the_episode() {
        let mut m = mgr();
        assert_eq!(m.on_failed(3, 1_000), FailAction::Scheduled);
        assert_eq!(m.pending_target(), Some(3));
        assert!(m.in_flight());
        let (target, golden) = m.take_rollback(350);
        assert_eq!(target.seg, 3);
        assert!(!golden);
        assert_eq!(m.report().reexecuted_insts, 50);
        // Re-executed segment 3 verifies.
        let out = m.on_verified(3, 1_900);
        assert!(out.episode_closed);
        assert_eq!(out.episode_started, Some(1_000));
        assert!(!m.in_flight());
        let r = m.report();
        assert_eq!(r.rollbacks, 1);
        assert_eq!(r.recovered, 1);
        assert_eq!(r.recovery_cycles_total, 900);
        assert_eq!(r.max_recovery_cycles, 900);
    }

    #[test]
    fn retry_budget_escalates_to_golden() {
        let mut m = mgr();
        for round in 0..4u64 {
            assert_eq!(m.on_failed(2, round * 100), FailAction::Scheduled);
            let (_, golden) = m.take_rollback(250);
            assert_eq!(golden, round >= 3, "round {round}");
        }
        assert_eq!(m.report().escalations, 1);
        assert_eq!(m.report().retries, 3);
        let out = m.on_verified(2, 5_000);
        assert!(out.episode_closed, "golden re-execution closes the episode");
    }

    #[test]
    fn pass_verdicts_cannot_release_a_pending_deep_rollback_target() {
        // Depth 2: segment 5 fails, targeting checkpoint 4. While the
        // rollback waits for older verdicts, segment 4 passes — then
        // 1..3 pass, which would (without the hold) sweep checkpoint 4
        // out of the store and panic take_rollback.
        let mut m = RecoveryManager::new(RecoveryPolicy::with_depth(2));
        for seg in 1..=5 {
            m.pin_checkpoint(seg, seg as u64 * 100, RegCheckpoint::zeroed(0), BTreeMap::new());
        }
        assert_eq!(m.on_failed(5, 1_000), FailAction::Scheduled);
        assert_eq!(m.pending_target(), Some(4));
        m.on_verified(4, 1_010);
        for seg in 1..=3 {
            let out = m.on_verified(seg, 1_020 + seg as u64);
            assert!(!out.episode_closed);
        }
        // The gate opens (all older segments concluded): the target
        // must still be there.
        let (target, golden) = m.take_rollback(520);
        assert_eq!(target.seg, 4);
        assert!(!golden);
        let out = m.on_verified(5, 2_000);
        assert!(out.episode_closed);
        assert_eq!(m.report().recovered, 1);
    }

    #[test]
    fn give_up_without_escalation() {
        let mut m = RecoveryManager::new(RecoveryPolicy {
            max_retries: 0,
            escalate_to_golden: false,
            ..RecoveryPolicy::enabled()
        });
        m.pin_checkpoint(1, 0, RegCheckpoint::zeroed(0), BTreeMap::new());
        assert_eq!(m.on_failed(1, 10), FailAction::GiveUp);
        assert_eq!(m.report().unrecovered, 1);
        assert!(!m.in_flight());
    }

    #[test]
    fn disabled_manager_is_inert() {
        let mut m = RecoveryManager::new(RecoveryPolicy::default());
        m.pin_checkpoint(1, 0, RegCheckpoint::zeroed(0), BTreeMap::new());
        assert_eq!(m.on_failed(1, 10), FailAction::Ignored);
        assert_eq!(m.on_verified(1, 20), VerdictOutcome::default());
        assert!(!m.in_flight());
        assert_eq!(*m.report(), RecoveryReport::default());
    }

    #[test]
    fn concurrent_failures_keep_the_older_target() {
        let mut m = mgr();
        m.on_failed(3, 100);
        m.on_failed(2, 110);
        assert_eq!(m.pending_target(), Some(2));
    }

    #[test]
    fn unclosed_episode_counts_unrecovered_at_drain() {
        let mut m = mgr();
        m.on_failed(4, 100);
        let _ = m.take_rollback(500);
        m.resolve_at_drain();
        assert_eq!(m.report().unrecovered, 1);
        assert!(!m.in_flight());
    }
}
