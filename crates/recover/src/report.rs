//! Recovery metrics merged into the system's `RunReport`.

/// Counters and latency/storage roll-up of the recovery subsystem for
/// one run. All-zero when recovery is disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Rollbacks executed (squash + state restore + re-execution).
    pub rollbacks: u64,
    /// Rollbacks beyond the first within a failure episode.
    pub retries: u64,
    /// Episodes that exceeded the retry budget and re-executed in
    /// golden (injection-suppressed) mode.
    pub escalations: u64,
    /// Failure episodes closed by a pass verdict for the failed
    /// segment: the detection was fully recovered.
    pub recovered: u64,
    /// Failure episodes abandoned (retry budget exhausted with
    /// escalation disabled, or no reachable checkpoint).
    pub unrecovered: u64,
    /// Instructions squashed and re-executed across all rollbacks.
    pub reexecuted_insts: u64,
    /// Sum of recovery latencies: big-core cycles from each fail
    /// verdict to the pass verdict of the re-executed segment.
    pub recovery_cycles_total: u64,
    /// Worst-case single-episode recovery latency in cycles.
    pub max_recovery_cycles: u64,
    /// High-water mark of recovery storage: pinned checkpoints plus
    /// the memory undo-log, in modelled bytes.
    pub storage_bytes_hwm: u64,
    /// Most checkpoints pinned at once.
    pub pinned_checkpoints_hwm: u64,
}

impl RecoveryReport {
    /// Mean recovery latency in cycles (`None` without recoveries).
    pub fn mean_recovery_cycles(&self) -> Option<f64> {
        if self.recovered == 0 {
            None
        } else {
            Some(self.recovery_cycles_total as f64 / self.recovered as f64)
        }
    }

    /// Whether every failure episode was recovered.
    pub fn fully_recovered(&self) -> bool {
        self.unrecovered == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_latency_needs_recoveries() {
        let mut r = RecoveryReport::default();
        assert_eq!(r.mean_recovery_cycles(), None);
        assert!(r.fully_recovered());
        r.recovered = 4;
        r.recovery_cycles_total = 1000;
        assert_eq!(r.mean_recovery_cycles(), Some(250.0));
        r.unrecovered = 1;
        assert!(!r.fully_recovered());
    }
}
