//! **meek-recover** — checkpoint/rollback/re-execution recovery for the
//! MEEK SoC.
//!
//! MEEK's checkers *detect* divergence; until this crate, a `fail`
//! verdict was the end of the story — the run was diagnosed, and dead.
//! Recovery closes the loop: the system keeps a per-segment
//! architectural checkpoint (register file, PC, CSRs) pinned until the
//! segment's check verdict drains, layers a write undo-log
//! (`meek_mem::UndoLog`) over the functional memory, and on a fail
//! verdict rolls the big core back to the last trusted checkpoint,
//! squashes everything in flight (pipeline, DC-Buffers, fabric,
//! checker assignments), and re-executes forward — turning
//! detect-only into **detect → rollback → re-execute → verify**.
//!
//! The pieces:
//!
//! * [`RecoveryPolicy`] — the knobs: rollback depth, retry budget,
//!   golden escalation, restore latency;
//! * [`CheckpointStore`] — pinned [`SegmentCheckpoint`]s, released in
//!   segment order as verdicts drain, with storage high-water marks;
//! * [`RecoveryManager`] — the verdict-driven state machine deciding
//!   *what* to do; the SoC layer (`meek-core`) owns *how*;
//! * [`RecoveryReport`] — latency/storage/retry metrics merged into
//!   the system's `RunReport`.
//!
//! The subsystem is exercised end to end by `meek-difftest --recover`:
//! every injected-and-detected fault must leave the recovered run with
//! a final architectural state (registers, CSRs, and memory) equal to
//! the golden interpreter's.

pub mod checkpoint;
pub mod manager;
pub mod policy;
pub mod report;

pub use checkpoint::{CheckpointStore, ReleaseOutcome, SegmentCheckpoint};
pub use manager::{FailAction, RecoveryManager, VerdictOutcome};
pub use policy::RecoveryPolicy;
pub use report::RecoveryReport;
