//! **meek-campaign** — a sharded, deterministic, multi-threaded
//! fault-injection campaign engine for the MEEK simulator.
//!
//! The paper's coverage and detection-latency results (§V-B, Fig. 7)
//! come from campaigns of 5 000–10 000 injected faults per workload.
//! Running those serially is the harness bottleneck, not the simulator:
//! every fault is an independent simulation. This crate turns a
//! campaign into a grid of self-contained *shards* (workload ×
//! fault-batch), runs them on a work-stealing thread pool, and streams
//! the resulting [`DetectionRecord`]s through pluggable sinks — with
//! three properties the serial loops never had:
//!
//! * **Determinism**: per-shard RNG streams are derived from the
//!   campaign seed, and results are re-sequenced into shard order
//!   before they reach a sink, so output is byte-identical at
//!   `--threads 1` and `--threads 16`.
//! * **Build sharing**: workload programs are synthesised once per
//!   benchmark in a [`WorkloadCache`] and shared by `Arc`, so codegen
//!   cost is O(benchmarks) instead of O(faults).
//! * **Streaming**: sinks see each shard's records as soon as the
//!   ordered prefix completes, not at campaign end.
//!
//! # Quickstart
//!
//! ```
//! use meek_campaign::{run_campaign, AggregateSink, CampaignSpec, Executor, RecordSink};
//! use meek_workloads::parsec3;
//!
//! let mut spec = CampaignSpec::new(vec![parsec3()[0].clone()], 4, 0xF00D);
//! spec.faults_per_shard = 2;
//! let mut agg = AggregateSink::new();
//! let summary = {
//!     let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut agg];
//!     run_campaign(&spec, &Executor::new(2), &mut sinks).unwrap()
//! };
//! assert_eq!(summary.detected + summary.masked as usize + summary.pending, 4);
//! ```
//!
//! The `meek-campaign` binary wraps this as a CLI:
//!
//! ```text
//! cargo run --release -p meek-campaign -- --suite specint --faults 1000 --threads 8
//! ```
//!
//! [`DetectionRecord`]: meek_core::fault::DetectionRecord
//! [`WorkloadCache`]: meek_workloads::WorkloadCache

pub mod engine;
pub mod executor;
pub mod sink;
pub mod spec;

pub use engine::{run_campaign, run_shard, CampaignSummary, ShardResult};
pub use executor::Executor;
pub use sink::{
    site_name, AggregateSink, CampaignRecord, CsvSink, JsonlSink, LatencyStats, MetricsSink,
    RecordSink, SampleSink, ShardSummary, TraceSink,
};
pub use spec::{resolve_suite, CampaignSpec, CampaignWorkload, ShardSpec};
