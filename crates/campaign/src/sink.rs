//! Pluggable campaign output: every detection streams through a set of
//! [`RecordSink`]s as its shard's results are re-sequenced into
//! deterministic order — CSV and JSON-lines writers for offline
//! analysis, and an in-memory aggregator for latency percentiles.

use meek_core::fault::{DetectionRecord, FaultSite};
use std::collections::BTreeMap;
use std::io::{self, Write};

/// One detection, qualified by where in the campaign grid it happened.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRecord {
    /// Benchmark name.
    pub workload: &'static str,
    /// Shard position within the workload.
    pub shard: u32,
    /// The checker's detection, as recorded by the fault injector.
    pub detection: DetectionRecord,
}

/// Stable lower-case name for a fault site (column value in sinks).
/// Shared with the sim event stream via [`FaultSite::name`].
pub fn site_name(site: FaultSite) -> &'static str {
    site.name()
}

impl CampaignRecord {
    /// CSV header matching [`CampaignRecord::csv_row`].
    pub const CSV_HEADER: &'static str =
        "workload,shard,site,injected_cycle,detected_cycle,latency_ns,seg,recovered,\
         recovery_cycles";

    /// One CSV row (no newline). The recovery-latency columns are `0,0`
    /// for detect-only campaigns and for parity-window detections
    /// (corrected in place, nothing to roll back).
    pub fn csv_row(&self) -> String {
        let d = &self.detection;
        format!(
            "{},{},{},{},{},{:.3},{},{},{}",
            self.workload,
            self.shard,
            site_name(d.site),
            d.injected_cycle,
            d.detected_cycle,
            d.latency_ns,
            d.seg,
            u8::from(d.recovery_cycles.is_some()),
            d.recovery_cycles.unwrap_or(0)
        )
    }

    /// One JSON object (no newline). Fields are flat and stable.
    pub fn json_line(&self) -> String {
        let d = &self.detection;
        format!(
            "{{\"workload\":\"{}\",\"shard\":{},\"site\":\"{}\",\"injected_cycle\":{},\
             \"detected_cycle\":{},\"latency_ns\":{:.3},\"seg\":{},\"recovered\":{},\
             \"recovery_cycles\":{}}}",
            self.workload,
            self.shard,
            site_name(d.site),
            d.injected_cycle,
            d.detected_cycle,
            d.latency_ns,
            d.seg,
            d.recovery_cycles.is_some(),
            d.recovery_cycles.unwrap_or(0)
        )
    }
}

/// Per-shard roll-up delivered to sinks after the shard's records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSummary {
    /// Benchmark name.
    pub workload: &'static str,
    /// Shard position within the workload.
    pub shard: u32,
    /// Faults queued for injection.
    pub faults: usize,
    /// Faults detected by the checkers.
    pub detected: usize,
    /// Injected faults whose candidate segments verified clean (the
    /// flipped bit was architecturally dead).
    pub masked: u64,
    /// Faults with no verdict when the shard drained: still queued,
    /// armed but never fired, or awaiting a verdict that cannot come
    /// (e.g. a corrupted final checkpoint with no successor segment).
    pub pending: usize,
    /// Segments verified clean.
    pub verified_segments: u64,
    /// Segments whose replay mismatched.
    pub failed_segments: u64,
    /// Big-core cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Recovery rollbacks executed (0 in detect-only campaigns).
    pub rollbacks: u64,
    /// Failure episodes fully recovered (pass verdict after rollback).
    pub recovered: u64,
    /// Failure episodes abandoned by the recovery policy.
    pub unrecovered: u64,
    /// High-water mark of recovery storage (pinned checkpoints plus
    /// undo-log) in modelled bytes.
    pub storage_bytes_hwm: u64,
}

/// Receives campaign results in deterministic (shard, record) order.
pub trait RecordSink {
    /// Called once per detection, in shard order then injection order.
    fn on_record(&mut self, rec: &CampaignRecord) -> io::Result<()>;

    /// Called once per shard (before [`RecordSink::on_shard`]) with
    /// the shard's serialised JSONL event trace — complete lines, each
    /// already carrying `workload`/`shard` context fields. Empty when
    /// event tracing is off. Most sinks ignore it; [`TraceSink`]
    /// writes it through.
    fn on_trace(&mut self, _jsonl: &[u8]) -> io::Result<()> {
        Ok(())
    }

    /// Called once per shard (before [`RecordSink::on_shard`]) with the
    /// shard's occupancy time series as CSV rows
    /// `workload,shard,cycle,rob_occupancy,fabric_depth,littles_idle,lsl_occupancy`.
    /// Empty when sampling is off. Most sinks ignore it; [`SampleSink`]
    /// writes it through.
    fn on_samples(&mut self, _csv: &[u8]) -> io::Result<()> {
        Ok(())
    }

    /// Called once per shard (before [`RecordSink::on_shard`]) with the
    /// shard's rendered metrics registry
    /// ([`meek_telemetry::Registry::render`] text). Empty when metrics
    /// collection is off. Most sinks ignore it; [`MetricsSink`] merges
    /// the registries in call (= shard) order.
    fn on_metrics(&mut self, _text: &[u8]) -> io::Result<()> {
        Ok(())
    }

    /// Called once per shard, after all its records.
    fn on_shard(&mut self, _summary: &ShardSummary) -> io::Result<()> {
        Ok(())
    }

    /// Called once, after every shard.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Streams the structured per-shard event traces (`--trace`): one JSON
/// line per [`meek_core::SimEvent`], in deterministic shard order —
/// the typed replacement for the old debug-string diagnostics.
pub struct TraceSink<W: Write> {
    out: W,
}

impl<W: Write> TraceSink<W> {
    /// A trace sink writing to `out`.
    pub fn new(out: W) -> TraceSink<W> {
        TraceSink { out }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> RecordSink for TraceSink<W> {
    fn on_record(&mut self, _rec: &CampaignRecord) -> io::Result<()> {
        Ok(())
    }

    fn on_trace(&mut self, jsonl: &[u8]) -> io::Result<()> {
        self.out.write_all(jsonl)
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Streams the per-shard occupancy time series (`--sample`): CSV rows
/// `workload,shard,cycle,rob_occupancy,fabric_depth,littles_idle,lsl_occupancy`
/// in deterministic shard order — the data behind ROB-occupancy /
/// fabric-depth time-series figures and the adaptive-checking load
/// signal.
pub struct SampleSink<W: Write> {
    out: W,
    wrote_header: bool,
}

impl<W: Write> SampleSink<W> {
    /// A sample sink writing to `out`.
    pub fn new(out: W) -> SampleSink<W> {
        SampleSink { out, wrote_header: false }
    }

    /// A sample sink appending to a writer that already holds the CSV
    /// header — the resume path, where earlier shards' output survived
    /// a restart and the header must not repeat.
    pub fn resuming(out: W) -> SampleSink<W> {
        SampleSink { out, wrote_header: true }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> RecordSink for SampleSink<W> {
    fn on_record(&mut self, _rec: &CampaignRecord) -> io::Result<()> {
        Ok(())
    }

    fn on_samples(&mut self, csv: &[u8]) -> io::Result<()> {
        if csv.is_empty() {
            return Ok(());
        }
        if !self.wrote_header {
            writeln!(
                self.out,
                "workload,shard,cycle,rob_occupancy,fabric_depth,littles_idle,lsl_occupancy"
            )?;
            self.wrote_header = true;
        }
        self.out.write_all(csv)
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Merges the per-shard metrics registries (`--metrics`) and writes the
/// merged [`meek_telemetry::Registry::render`] text once at
/// [`RecordSink::finish`]. Registries arrive in deterministic shard
/// order and [`meek_telemetry::Registry::merge`] is integer-only, so
/// the merged output is byte-identical at any thread count.
pub struct MetricsSink<W: Write> {
    out: W,
    merged: meek_telemetry::Registry,
}

impl<W: Write> MetricsSink<W> {
    /// A metrics sink writing the merged registry to `out`.
    pub fn new(out: W) -> MetricsSink<W> {
        MetricsSink { out, merged: meek_telemetry::Registry::new() }
    }

    /// The merge state accumulated so far.
    pub fn registry(&self) -> &meek_telemetry::Registry {
        &self.merged
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> RecordSink for MetricsSink<W> {
    fn on_record(&mut self, _rec: &CampaignRecord) -> io::Result<()> {
        Ok(())
    }

    fn on_metrics(&mut self, text: &[u8]) -> io::Result<()> {
        if text.is_empty() {
            return Ok(());
        }
        let text = std::str::from_utf8(text).map_err(io::Error::other)?;
        let shard = meek_telemetry::Registry::parse(text).map_err(io::Error::other)?;
        self.merged.merge(&shard);
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.write_all(self.merged.render().as_bytes())?;
        self.out.flush()
    }
}

/// Streams records as CSV (header written lazily before the first row).
pub struct CsvSink<W: Write> {
    out: W,
    wrote_header: bool,
}

impl<W: Write> CsvSink<W> {
    /// A CSV sink writing to `out`.
    pub fn new(out: W) -> CsvSink<W> {
        CsvSink { out, wrote_header: false }
    }

    /// A CSV sink appending to a writer that already holds the header —
    /// the resume path, where earlier shards' output survived a restart
    /// and the header must not repeat.
    pub fn resuming(out: W) -> CsvSink<W> {
        CsvSink { out, wrote_header: true }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> RecordSink for CsvSink<W> {
    fn on_record(&mut self, rec: &CampaignRecord) -> io::Result<()> {
        if !self.wrote_header {
            writeln!(self.out, "{}", CampaignRecord::CSV_HEADER)?;
            self.wrote_header = true;
        }
        writeln!(self.out, "{}", rec.csv_row())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Streams records as JSON-lines.
pub struct JsonlSink<W: Write> {
    out: W,
}

impl<W: Write> JsonlSink<W> {
    /// A JSON-lines sink writing to `out`.
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink { out }
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> RecordSink for JsonlSink<W> {
    fn on_record(&mut self, rec: &CampaignRecord) -> io::Result<()> {
        writeln!(self.out, "{}", rec.json_line())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Latency statistics for one workload (or the whole campaign).
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    latencies_ns: Vec<f64>,
    /// Faults detected.
    pub detected: usize,
    /// Faults masked (candidate segments verified clean).
    pub masked: u64,
    /// Faults with no verdict when their shard drained.
    pub pending: usize,
    /// Faults queued.
    pub faults: usize,
    /// Recovery rollbacks executed.
    pub rollbacks: u64,
    /// Failure episodes fully recovered.
    pub recovered: u64,
    /// Failure episodes the recovery policy abandoned.
    pub unrecovered: u64,
}

impl LatencyStats {
    /// Mean latency in ns (0 if no detections).
    pub fn mean_ns(&self) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        self.latencies_ns.iter().sum::<f64>() / self.latencies_ns.len() as f64
    }

    /// Worst-case latency in ns (0 if no detections).
    pub fn max_ns(&self) -> f64 {
        self.latencies_ns.iter().cloned().fold(0.0, f64::max)
    }

    /// Latency percentile `p` in `[0, 1]` (0 if no detections); assumes
    /// `finalize` sorted the samples.
    pub fn percentile_ns(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "percentile {p} out of [0, 1]");
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        let rank = ((self.latencies_ns.len() as f64 * p).ceil() as usize)
            .clamp(1, self.latencies_ns.len());
        self.latencies_ns[rank - 1]
    }

    /// Fraction of detections under `bound_ns` (1 if no detections).
    pub fn fraction_under(&self, bound_ns: f64) -> f64 {
        if self.latencies_ns.is_empty() {
            return 1.0;
        }
        self.latencies_ns.iter().filter(|&&l| l < bound_ns).count() as f64
            / self.latencies_ns.len() as f64
    }

    /// Density histogram over `buckets` buckets of `bucket_ns` each;
    /// overflow clamps into the last bucket.
    pub fn histogram(&self, bucket_ns: f64, buckets: usize) -> Vec<f64> {
        let mut hist = vec![0u32; buckets];
        for &l in &self.latencies_ns {
            let b = ((l / bucket_ns) as usize).min(buckets - 1);
            hist[b] += 1;
        }
        let n = self.latencies_ns.len().max(1) as f64;
        hist.into_iter().map(|h| h as f64 / n).collect()
    }

    /// The raw (sorted, after finalize) latency samples.
    pub fn latencies_ns(&self) -> &[f64] {
        &self.latencies_ns
    }

    fn finalize(&mut self) {
        self.latencies_ns.sort_by(f64::total_cmp);
    }
}

/// In-memory aggregation: per-workload and campaign-wide latency
/// distributions, detection and mask counts.
#[derive(Debug, Default)]
pub struct AggregateSink {
    per_workload: BTreeMap<&'static str, LatencyStats>,
    overall: LatencyStats,
    finished: bool,
}

impl AggregateSink {
    /// An empty aggregator.
    pub fn new() -> AggregateSink {
        AggregateSink::default()
    }

    /// Per-workload stats, keyed by benchmark name (call after the
    /// campaign finishes).
    pub fn per_workload(&self) -> &BTreeMap<&'static str, LatencyStats> {
        assert!(self.finished, "aggregate read before finish()");
        &self.per_workload
    }

    /// Campaign-wide stats (call after the campaign finishes).
    pub fn overall(&self) -> &LatencyStats {
        assert!(self.finished, "aggregate read before finish()");
        &self.overall
    }
}

impl RecordSink for AggregateSink {
    fn on_record(&mut self, rec: &CampaignRecord) -> io::Result<()> {
        let l = rec.detection.latency_ns;
        self.per_workload.entry(rec.workload).or_default().latencies_ns.push(l);
        self.overall.latencies_ns.push(l);
        Ok(())
    }

    fn on_shard(&mut self, s: &ShardSummary) -> io::Result<()> {
        let w = self.per_workload.entry(s.workload).or_default();
        w.detected += s.detected;
        w.masked += s.masked;
        w.pending += s.pending;
        w.faults += s.faults;
        w.rollbacks += s.rollbacks;
        w.recovered += s.recovered;
        w.unrecovered += s.unrecovered;
        self.overall.detected += s.detected;
        self.overall.masked += s.masked;
        self.overall.pending += s.pending;
        self.overall.faults += s.faults;
        self.overall.rollbacks += s.rollbacks;
        self.overall.recovered += s.recovered;
        self.overall.unrecovered += s.unrecovered;
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        for stats in self.per_workload.values_mut() {
            stats.finalize();
        }
        self.overall.finalize();
        self.finished = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(workload: &'static str, shard: u32, latency_ns: f64) -> CampaignRecord {
        CampaignRecord {
            workload,
            shard,
            detection: DetectionRecord {
                site: FaultSite::MemData,
                injected_cycle: 100,
                detected_cycle: 420,
                latency_ns,
                seg: 3,
                recovery_cycles: None,
            },
        }
    }

    fn recovered_rec(workload: &'static str, shard: u32, cycles: u64) -> CampaignRecord {
        let mut r = rec(workload, shard, 80.0);
        r.detection.recovery_cycles = Some(cycles);
        r
    }

    #[test]
    fn csv_is_stable_and_headed() {
        let mut sink = CsvSink::new(Vec::new());
        sink.on_record(&rec("mcf", 1, 100.0)).unwrap();
        sink.on_record(&recovered_rec("mcf", 2, 5_120)).unwrap();
        sink.finish().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(
            text,
            "workload,shard,site,injected_cycle,detected_cycle,latency_ns,seg,recovered,\
             recovery_cycles\n\
             mcf,1,mem_data,100,420,100.000,3,0,0\n\
             mcf,2,mem_data,100,420,80.000,3,1,5120\n"
        );
    }

    #[test]
    fn jsonl_is_one_flat_object_per_line() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.on_record(&rec("astar", 0, 62.5)).unwrap();
        sink.on_record(&recovered_rec("astar", 0, 900)).unwrap();
        sink.finish().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(
            text,
            "{\"workload\":\"astar\",\"shard\":0,\"site\":\"mem_data\",\
             \"injected_cycle\":100,\"detected_cycle\":420,\"latency_ns\":62.500,\"seg\":3,\
             \"recovered\":false,\"recovery_cycles\":0}\n\
             {\"workload\":\"astar\",\"shard\":0,\"site\":\"mem_data\",\
             \"injected_cycle\":100,\"detected_cycle\":420,\"latency_ns\":80.000,\"seg\":3,\
             \"recovered\":true,\"recovery_cycles\":900}\n"
        );
    }

    #[test]
    fn aggregate_percentiles() {
        let mut agg = AggregateSink::new();
        for i in 1..=100 {
            agg.on_record(&rec("a", 0, i as f64)).unwrap();
        }
        agg.on_shard(&ShardSummary {
            workload: "a",
            shard: 0,
            faults: 110,
            detected: 100,
            masked: 10,
            pending: 0,
            verified_segments: 5,
            failed_segments: 100,
            cycles: 1,
            committed: 1,
            rollbacks: 40,
            recovered: 39,
            unrecovered: 1,
            storage_bytes_hwm: 4096,
        })
        .unwrap();
        agg.finish().unwrap();
        let s = agg.overall();
        assert_eq!(s.detected, 100);
        assert_eq!(s.masked, 10);
        assert_eq!(s.rollbacks, 40);
        assert_eq!(s.recovered, 39);
        assert_eq!(s.unrecovered, 1);
        assert!((s.mean_ns() - 50.5).abs() < 1e-9);
        assert_eq!(s.percentile_ns(0.5), 50.0);
        assert_eq!(s.percentile_ns(0.99), 99.0);
        assert_eq!(s.percentile_ns(1.0), 100.0);
        assert_eq!(s.max_ns(), 100.0);
        assert!((s.fraction_under(51.0) - 0.5).abs() < 1e-9);
        let hist = s.histogram(50.0, 3);
        assert!((hist[0] - 0.49).abs() < 1e-9, "49 of 100 under 50ns");
        assert!((hist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_aggregate_is_sane() {
        let mut agg = AggregateSink::new();
        agg.finish().unwrap();
        assert_eq!(agg.overall().mean_ns(), 0.0);
        assert_eq!(agg.overall().percentile_ns(0.999), 0.0);
        assert_eq!(agg.overall().fraction_under(3000.0), 1.0);
    }
}
