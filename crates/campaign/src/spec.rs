//! Campaign specification: the workload × fault-site × bit × seed grid,
//! sliced into independent, deterministic shards.
//!
//! A shard is the unit of parallel work: one `MeekSystem` simulation of
//! one workload with a handful of queued faults. Everything a shard
//! does is a pure function of the [`CampaignSpec`] and the shard's
//! position in the grid — per-shard RNG streams are derived by hashing
//! `(campaign seed, benchmark, shard index)` — so a campaign produces
//! identical records whether shards run on one thread or sixteen, and
//! a re-run with the same spec reproduces a prior campaign exactly.

use meek_core::fault::{random_fault_specs, FaultSpec};
use meek_core::MeekConfig;
use meek_progs::Kernel;
use meek_workloads::{parsec3, spec_int_2006, BenchmarkProfile};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One benchmark a campaign injects into: a profile-synthesised model
/// program, or a committed real program from the `meek-progs` suite.
#[derive(Debug, Clone)]
pub enum CampaignWorkload {
    /// A profile-synthesised benchmark (the SPECint/PARSEC models).
    Profile(BenchmarkProfile),
    /// One committed real-program kernel.
    Prog(&'static Kernel),
    /// The fused all-kernel multi-workload set: one image whose
    /// scheduler stub context-switches through every suite kernel.
    ProgSet,
}

impl CampaignWorkload {
    /// The benchmark name as it appears in shard specs and records.
    pub fn name(&self) -> &'static str {
        match self {
            CampaignWorkload::Profile(p) => p.name,
            CampaignWorkload::Prog(k) => k.name,
            CampaignWorkload::ProgSet => meek_progs::SET_NAME,
        }
    }
}

impl From<BenchmarkProfile> for CampaignWorkload {
    fn from(p: BenchmarkProfile) -> CampaignWorkload {
        CampaignWorkload::Profile(p)
    }
}

/// A full fault-injection campaign description.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Benchmarks to inject into.
    pub workloads: Vec<CampaignWorkload>,
    /// System configuration every shard simulates.
    pub config: MeekConfig,
    /// Faults injected per workload.
    pub faults_per_workload: usize,
    /// Faults per shard (the parallel grain). Smaller shards spread
    /// better across threads; larger shards amortise warm-up.
    pub faults_per_shard: usize,
    /// Dynamic instructions of headroom per fault: each fault occupies
    /// the injector until its segment's verdict, which for masked
    /// checkpoint faults can lag several segments, so shards budget
    /// this many instructions per queued fault.
    pub insts_per_fault: u64,
    /// Campaign master seed: workload programs, fault sites, bits and
    /// arm points all derive from it.
    pub seed: u64,
    /// When `true`, every shard's run attaches the JSONL event
    /// observer and streams its structured event trace (segment opens,
    /// verdicts, injections, detections, rollbacks) to the sinks'
    /// trace channel — the diagnostics path for campaign failures.
    /// Trace output is re-sequenced into shard order like every other
    /// sink, so it stays byte-identical at any thread count.
    pub trace_events: bool,
    /// When non-zero, every shard's run attaches a
    /// [`meek_core::SamplingObserver`] keeping every `sample_stride`-th
    /// cycle's ROB-occupancy / fabric-depth sample, and streams the
    /// per-shard CSV time series to the sinks' sample channel
    /// (`meek-campaign --sample`). Re-sequenced into shard order like
    /// every other sink. `0` disables sampling.
    pub sample_stride: u64,
    /// When `true`, every shard's run attaches a
    /// [`meek_telemetry::MetricsObserver`] and ships its rendered
    /// registry (detection-latency histograms by site, verdict counts,
    /// occupancy distributions, …) to the sinks' metrics channel
    /// (`meek-campaign --metrics`). Registries are merged in shard
    /// order, so the merged output is byte-identical at any thread
    /// count. Occupancy histograms sample on the [`Self::sample_stride`]
    /// grid when sampling is on, else every
    /// [`DEFAULT_METRICS_STRIDE`]-th cycle.
    pub metrics: bool,
}

/// Default faults per shard.
pub const DEFAULT_FAULTS_PER_SHARD: usize = 25;
/// Default instruction headroom per queued fault. One fault occupies
/// the injector from arming until its segment's verdict; a masked
/// checkpoint fault can wait ~4 segments (~6 k instructions) for its
/// unreachability window, so 4 000 keeps the queue draining with no
/// faults left pending at end of shard.
pub const DEFAULT_INSTS_PER_FAULT: u64 = 4_000;
/// Floor on a shard's instruction budget (keeps tiny tail shards from
/// ending before their last fault's segment is verified).
pub const MIN_SHARD_INSTS: u64 = 5_000;
/// Occupancy-histogram sampling stride of `--metrics` when `--sample`
/// is off: dense enough to populate every bucket a run visits, sparse
/// enough that metric collection stays a rounding error next to the
/// simulation itself.
pub const DEFAULT_METRICS_STRIDE: u64 = 64;

impl CampaignSpec {
    /// A spec with the paper's Table II configuration and default
    /// sharding parameters.
    pub fn new(
        workloads: impl IntoIterator<Item = impl Into<CampaignWorkload>>,
        faults_per_workload: usize,
        seed: u64,
    ) -> CampaignSpec {
        CampaignSpec {
            workloads: workloads.into_iter().map(Into::into).collect(),
            config: MeekConfig::default(),
            faults_per_workload,
            faults_per_shard: DEFAULT_FAULTS_PER_SHARD,
            insts_per_fault: DEFAULT_INSTS_PER_FAULT,
            seed,
            trace_events: false,
            sample_stride: 0,
            metrics: false,
        }
    }

    /// The seed a workload's program is synthesised with (one build per
    /// benchmark per campaign, shared by all its shards). Committed
    /// real programs ignore it for codegen — assembly is deterministic —
    /// but it still keys the build cache.
    pub fn workload_seed(&self, name: &str) -> u64 {
        splitmix(self.seed ^ fnv1a(name))
    }

    /// Expands the grid into its dense shard list.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (no workloads, zero faults, or a
    /// zero shard/headroom parameter).
    pub fn shards(&self) -> Vec<ShardSpec> {
        assert!(!self.workloads.is_empty(), "campaign needs at least one workload");
        assert!(self.faults_per_workload > 0, "campaign needs at least one fault");
        assert!(self.faults_per_shard > 0, "faults_per_shard must be positive");
        assert!(self.insts_per_fault > 0, "insts_per_fault must be positive");
        let mut shards = Vec::new();
        for (workload_idx, w) in self.workloads.iter().enumerate() {
            let n_shards = self.faults_per_workload.div_ceil(self.faults_per_shard);
            for s in 0..n_shards {
                let faults =
                    self.faults_per_shard.min(self.faults_per_workload - s * self.faults_per_shard);
                // A committed real program runs once and exits, so its
                // shard budget — and with it the fault arm window — is
                // its measured dynamic length, not a headroom formula
                // sized for synthetic loops that fill any budget.
                let insts = match w {
                    CampaignWorkload::Profile(_) => {
                        (faults as u64 * self.insts_per_fault).max(MIN_SHARD_INSTS)
                    }
                    CampaignWorkload::Prog(k) => meek_progs::dynamic_len(k),
                    CampaignWorkload::ProgSet => meek_progs::set_dynamic_len(),
                };
                shards.push(ShardSpec {
                    index: shards.len(),
                    workload_idx,
                    workload: w.name(),
                    shard_in_workload: s as u32,
                    faults,
                    insts,
                    rng_seed: splitmix(
                        self.seed ^ fnv1a(w.name()) ^ (s as u64).wrapping_mul(0x9E37_79B9),
                    ),
                });
            }
        }
        shards
    }
}

/// One unit of parallel campaign work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Dense global index (the deterministic output order).
    pub index: usize,
    /// Index into [`CampaignSpec::workloads`].
    pub workload_idx: usize,
    /// Benchmark name.
    pub workload: &'static str,
    /// Shard position within its workload.
    pub shard_in_workload: u32,
    /// Faults this shard injects.
    pub faults: usize,
    /// Dynamic instruction budget for this shard's simulation.
    pub insts: u64,
    /// Seed of this shard's private RNG stream.
    pub rng_seed: u64,
}

impl ShardSpec {
    /// Generates this shard's fault queue: sites and bits drawn from the
    /// shard's RNG stream, arm points spread uniformly over the front
    /// 70 % of the instruction budget (mirroring the paper's random
    /// campaigns). The tail slack absorbs verdict latency: the injector
    /// holds one fault outstanding at a time, so a slow verdict slides
    /// every later arm point; without the slack, tail faults slip past
    /// the end of the run and count as pending.
    pub fn fault_specs(&self) -> Vec<FaultSpec> {
        let mut rng = SmallRng::seed_from_u64(self.rng_seed);
        random_fault_specs(self.faults, self.insts * 7 / 10, &mut rng)
    }
}

/// Resolves a suite selector to campaign workloads: `specint`,
/// `parsec`, `all`, `progs` (the committed real-program kernels plus
/// the fused multi-workload set), or a comma-separated list of
/// benchmark names — profile names, suite kernel names, and
/// `progs-set` may be mixed freely. The one vocabulary shared by
/// `meek-campaign --suite` and `meek-serve` job specs, so a spec means
/// the same thing on both paths.
///
/// # Errors
///
/// Returns a message naming the unknown benchmark (and the known ones)
/// when a name does not resolve.
pub fn resolve_suite(suite: &str) -> Result<Vec<CampaignWorkload>, String> {
    let profiles = |ps: Vec<BenchmarkProfile>| ps.into_iter().map(CampaignWorkload::from).collect();
    let progs = || -> Vec<CampaignWorkload> {
        meek_progs::KERNELS
            .iter()
            .map(CampaignWorkload::Prog)
            .chain([CampaignWorkload::ProgSet])
            .collect()
    };
    match suite {
        "specint" | "spec" | "specint2006" => Ok(profiles(spec_int_2006())),
        "parsec" | "parsec3" => Ok(profiles(parsec3())),
        "all" => Ok(profiles(spec_int_2006().into_iter().chain(parsec3()).collect())),
        "progs" => Ok(progs()),
        names => {
            let all: Vec<BenchmarkProfile> = spec_int_2006().into_iter().chain(parsec3()).collect();
            let mut picked = Vec::new();
            for name in names.split(',') {
                let name = name.trim();
                if let Some(p) = all.iter().find(|p| p.name == name) {
                    picked.push(CampaignWorkload::Profile(p.clone()));
                } else if let Some(k) = meek_progs::kernel(name) {
                    picked.push(CampaignWorkload::Prog(k));
                } else if name == meek_progs::SET_NAME {
                    picked.push(CampaignWorkload::ProgSet);
                } else {
                    let known: Vec<&str> = all
                        .iter()
                        .map(|p| p.name)
                        .chain(meek_progs::KERNELS.iter().map(|k| k.name))
                        .chain([meek_progs::SET_NAME])
                        .collect();
                    return Err(format!("unknown benchmark `{name}`; known: {}", known.join(", ")));
                }
            }
            Ok(picked)
        }
    }
}

/// FNV-1a, for mixing benchmark names into seed derivations.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// SplitMix64 finaliser: decorrelates structured seed inputs.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use meek_workloads::parsec3;

    fn two_workload_spec() -> CampaignSpec {
        let profiles: Vec<BenchmarkProfile> = parsec3().into_iter().take(2).collect();
        CampaignSpec::new(profiles, 60, 0xC0FFEE)
    }

    #[test]
    fn grid_covers_every_fault_exactly_once() {
        let spec = two_workload_spec();
        let shards = spec.shards();
        // 60 faults / 25 per shard = 3 shards per workload (25+25+10).
        assert_eq!(shards.len(), 6);
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.index, i, "dense global index");
        }
        for w in 0..2 {
            let per: Vec<&ShardSpec> = shards.iter().filter(|s| s.workload_idx == w).collect();
            assert_eq!(per.iter().map(|s| s.faults).sum::<usize>(), 60);
            assert_eq!(per.last().unwrap().faults, 10, "tail shard takes the remainder");
        }
    }

    #[test]
    fn shard_rng_streams_are_distinct_and_stable() {
        let spec = two_workload_spec();
        let a = spec.shards();
        let b = spec.shards();
        assert_eq!(a, b, "grid expansion is deterministic");
        let mut seeds: Vec<u64> = a.iter().map(|s| s.rng_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), a.len(), "every shard gets a private stream");
    }

    #[test]
    fn fault_specs_are_deterministic_and_ordered() {
        let spec = two_workload_spec();
        let shard = spec.shards()[0];
        let f1 = shard.fault_specs();
        let f2 = shard.fault_specs();
        assert_eq!(f1, f2);
        assert_eq!(f1.len(), 25);
        for w in f1.windows(2) {
            assert!(w[0].arm_at_commit <= w[1].arm_at_commit, "arm points ascend");
        }
        assert!(f1.iter().all(|f| f.bit < 64));
        assert!(
            f1.last().unwrap().arm_at_commit < shard.insts * 7 / 10,
            "arms stay in the front of the budget"
        );
    }

    #[test]
    fn seed_changes_move_the_faults() {
        let mut spec = two_workload_spec();
        let a = spec.shards()[0].fault_specs();
        spec.seed ^= 1;
        let b = spec.shards()[0].fault_specs();
        assert_ne!(a, b);
    }

    #[test]
    fn workload_seed_differs_per_benchmark() {
        let spec = two_workload_spec();
        assert_ne!(
            spec.workload_seed(spec.workloads[0].name()),
            spec.workload_seed(spec.workloads[1].name())
        );
    }

    #[test]
    fn suite_selectors_resolve() {
        assert!(!resolve_suite("specint").unwrap().is_empty());
        assert!(!resolve_suite("parsec").unwrap().is_empty());
        let all = resolve_suite("all").unwrap();
        assert_eq!(all.len(), resolve_suite("specint").unwrap().len() + parsec3().len());
        let one = resolve_suite(all[0].name()).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].name(), all[0].name());
        let err = resolve_suite("not-a-benchmark").unwrap_err();
        assert!(err.contains("unknown benchmark"), "{err}");
    }

    #[test]
    fn progs_suite_resolves_kernels_plus_fused_set() {
        let progs = resolve_suite("progs").unwrap();
        assert_eq!(progs.len(), meek_progs::KERNELS.len() + 1);
        assert!(matches!(progs.last(), Some(CampaignWorkload::ProgSet)));
        // Kernel names, profile names, and the set name mix freely.
        let mixed = resolve_suite("memcpy,blackscholes,progs-set").unwrap();
        assert_eq!(mixed.len(), 3);
        assert!(matches!(&mixed[0], CampaignWorkload::Prog(k) if k.name == "memcpy"));
        assert!(matches!(&mixed[1], CampaignWorkload::Profile(p) if p.name == "blackscholes"));
        assert!(matches!(&mixed[2], CampaignWorkload::ProgSet));
        let err = resolve_suite("memcpy,bogus").unwrap_err();
        assert!(err.contains("progs-set"), "kernel names are listed as known: {err}");
    }

    #[test]
    fn prog_shards_use_the_measured_dynamic_length() {
        let k = meek_progs::kernel("memcpy").unwrap();
        let mut spec = CampaignSpec::new(
            vec![CampaignWorkload::Prog(k), CampaignWorkload::ProgSet],
            4,
            0xC0FFEE,
        );
        spec.faults_per_shard = 2;
        let shards = spec.shards();
        assert_eq!(shards.len(), 4);
        assert_eq!(shards[0].workload, "memcpy");
        assert_eq!(shards[0].insts, meek_progs::dynamic_len(k));
        assert_eq!(shards[2].workload, meek_progs::SET_NAME);
        assert_eq!(shards[2].insts, meek_progs::set_dynamic_len());
        // Arm points must land inside what the program actually runs.
        for sh in &shards {
            for f in sh.fault_specs() {
                assert!(f.arm_at_commit < sh.insts, "{f:?} arms past the program end");
            }
        }
    }

    #[test]
    fn tiny_shards_keep_instruction_floor() {
        let profiles: Vec<BenchmarkProfile> = parsec3().into_iter().take(1).collect();
        let mut spec = CampaignSpec::new(profiles, 1, 1);
        spec.faults_per_shard = 1;
        let shards = spec.shards();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].insts, MIN_SHARD_INSTS);
    }
}
