//! `meek-campaign` — CLI front-end for the sharded fault-injection
//! campaign engine.
//!
//! ```text
//! meek-campaign --suite specint --faults 1000 --threads 8 --out results/
//! ```
//!
//! Writes `campaign_records.csv` (one row per detection, byte-identical
//! for a given spec regardless of thread count), optionally
//! `campaign_records.jsonl`, and `campaign_summary.csv` (per-workload
//! latency stats), and prints the paper-style summary table.

use meek_campaign::{
    resolve_suite, run_campaign, AggregateSink, CampaignSpec, CsvSink, Executor, JsonlSink,
    MetricsSink, RecordSink, SampleSink, TraceSink,
};
use meek_core::MeekConfig;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
meek-campaign — sharded, deterministic fault-injection campaigns

USAGE:
    meek-campaign [OPTIONS]

OPTIONS:
    --suite <specint|parsec|all|progs|NAME[,NAME...]>
                          Benchmarks to inject into; `progs` selects the
                          committed real-program kernels plus the fused
                          multi-workload set; names select individual
                          benchmarks or kernels [default: parsec]
    --faults <N>          Faults per workload [default: 1000]
    --threads <N>         Worker threads; 0 = all hardware threads
                          [default: 0]
    --out <DIR>           Output directory [default: $MEEK_RESULTS_DIR
                          or ./results]
    --format <csv|jsonl|both>
                          Record file format(s) [default: csv]
    --seed <N>            Campaign master seed [default: 3203334829]
    --shard-faults <N>    Faults per shard (parallel grain) [default: 25]
    --insts-per-fault <N> Instruction headroom per fault [default: 4000]
    --little <N>          Checker cores per system [default: 4]
    --recover             Enable checkpoint/rollback recovery: every
                          detection rolls the big core back to the last
                          verified checkpoint and re-executes
    --trace <PATH>        Attach the JSONL event observer to every shard
                          and write the structured event trace (segment
                          opens, verdicts, injections, detections,
                          rollbacks) to PATH — byte-identical at any
                          --threads, the diagnostics path for campaign
                          failures
    --sample <PATH>       Attach the per-cycle sampling observer to every
                          shard and write the ROB-occupancy / fabric-depth
                          time series (CSV: workload,shard,cycle,
                          rob_occupancy,fabric_depth,littles_idle,
                          lsl_occupancy) to PATH — byte-identical at any
                          --threads
    --sample-stride <N>   Keep every N-th cycle in --sample output
                          [default: 64]
    --metrics <PATH>      Attach the metrics observer to every shard and
                          write the merged campaign-wide registry
                          (detection-latency histograms by fault site,
                          verdict counts, rollback depth/latency, ROB /
                          fabric / LSL occupancy distributions,
                          per-checker utilization) to PATH as stable
                          text — registries merge in shard order, so
                          output is byte-identical at any --threads
    --stream-window <N>   Cap completed-but-unwritten shard results held
                          in memory at N; 0 = unbounded. Shard output is
                          drained in shard order, so while one slow shard
                          holds the watermark every later shard's full
                          result — records plus --trace/--sample payloads
                          — buffers in memory: peak memory is O(shards)
                          unbounded, O(N) with a window. Output bytes are
                          unchanged [default: 0]
    --quiet               Suppress the per-workload table
    -h, --help            Print this help
";

struct Args {
    suite: String,
    faults: usize,
    threads: usize,
    out: PathBuf,
    format: String,
    seed: u64,
    shard_faults: usize,
    insts_per_fault: u64,
    little: usize,
    recover: bool,
    trace: Option<PathBuf>,
    sample: Option<PathBuf>,
    sample_stride: u64,
    metrics: Option<PathBuf>,
    stream_window: usize,
    quiet: bool,
}

impl Args {
    fn default_out() -> PathBuf {
        match std::env::var_os("MEEK_RESULTS_DIR") {
            Some(d) if !d.is_empty() => PathBuf::from(d),
            _ => PathBuf::from("results"),
        }
    }

    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args {
            suite: "parsec".into(),
            faults: 1000,
            threads: 0,
            out: Args::default_out(),
            format: "csv".into(),
            seed: 0xBEEF_CAAD,
            shard_faults: 25,
            insts_per_fault: meek_campaign::spec::DEFAULT_INSTS_PER_FAULT,
            little: 4,
            recover: false,
            trace: None,
            sample: None,
            sample_stride: 64,
            metrics: None,
            stream_window: 0,
            quiet: false,
        };
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--suite" => args.suite = value("--suite")?,
                "--faults" => args.faults = parse_num(&value("--faults")?, "--faults")?,
                "--threads" => args.threads = parse_num(&value("--threads")?, "--threads")?,
                "--out" => args.out = PathBuf::from(value("--out")?),
                "--format" => args.format = value("--format")?,
                "--seed" => args.seed = parse_num(&value("--seed")?, "--seed")?,
                "--shard-faults" => {
                    args.shard_faults = parse_num(&value("--shard-faults")?, "--shard-faults")?
                }
                "--insts-per-fault" => {
                    args.insts_per_fault =
                        parse_num(&value("--insts-per-fault")?, "--insts-per-fault")?
                }
                "--little" => args.little = parse_num(&value("--little")?, "--little")?,
                "--recover" => args.recover = true,
                "--trace" => args.trace = Some(PathBuf::from(value("--trace")?)),
                "--sample" => args.sample = Some(PathBuf::from(value("--sample")?)),
                "--sample-stride" => {
                    args.sample_stride = parse_num(&value("--sample-stride")?, "--sample-stride")?
                }
                "--metrics" => args.metrics = Some(PathBuf::from(value("--metrics")?)),
                "--stream-window" => {
                    args.stream_window = parse_num(&value("--stream-window")?, "--stream-window")?
                }
                "--quiet" => args.quiet = true,
                "-h" | "--help" => return Err(String::new()),
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if args.faults == 0 {
            return Err("--faults must be positive".into());
        }
        if args.shard_faults == 0 || args.insts_per_fault == 0 || args.little == 0 {
            return Err("--shard-faults, --insts-per-fault and --little must be positive".into());
        }
        if !matches!(args.format.as_str(), "csv" | "jsonl" | "both") {
            return Err(format!("--format must be csv, jsonl or both, got `{}`", args.format));
        }
        if args.sample_stride == 0 {
            return Err("--sample-stride must be positive".into());
        }
        Ok(args)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: cannot parse `{s}` as a number"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &Args) -> io::Result<()> {
    let workloads = resolve_suite(&args.suite).map_err(io::Error::other)?;
    let config = if args.recover {
        MeekConfig::with_recovery(args.little, meek_core::RecoveryPolicy::enabled())
    } else {
        MeekConfig::with_little_cores(args.little)
    };
    let spec = CampaignSpec {
        workloads,
        config,
        faults_per_workload: args.faults,
        faults_per_shard: args.shard_faults,
        insts_per_fault: args.insts_per_fault,
        seed: args.seed,
        trace_events: args.trace.is_some(),
        sample_stride: if args.sample.is_some() { args.sample_stride } else { 0 },
        metrics: args.metrics.is_some(),
    };
    let executor = Executor::new(args.threads).stream_window(args.stream_window);
    fs::create_dir_all(&args.out)?;

    let mut agg = AggregateSink::new();
    let mut csv = if matches!(args.format.as_str(), "csv" | "both") {
        let path = args.out.join("campaign_records.csv");
        Some((CsvSink::new(BufWriter::new(File::create(&path)?)), path))
    } else {
        None
    };
    let mut jsonl = if matches!(args.format.as_str(), "jsonl" | "both") {
        let path = args.out.join("campaign_records.jsonl");
        Some((JsonlSink::new(BufWriter::new(File::create(&path)?)), path))
    } else {
        None
    };
    let mut trace = match &args.trace {
        Some(path) => {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                fs::create_dir_all(parent)?;
            }
            Some((TraceSink::new(BufWriter::new(File::create(path)?)), path.clone()))
        }
        None => None,
    };
    let mut sample = match &args.sample {
        Some(path) => {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                fs::create_dir_all(parent)?;
            }
            Some((SampleSink::new(BufWriter::new(File::create(path)?)), path.clone()))
        }
        None => None,
    };
    let mut metrics = match &args.metrics {
        Some(path) => {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                fs::create_dir_all(parent)?;
            }
            Some((MetricsSink::new(BufWriter::new(File::create(path)?)), path.clone()))
        }
        None => None,
    };

    let n_workloads = spec.workloads.len();
    println!(
        "meek-campaign: {} fault(s) x {} workload(s), {} shard(s) on {} thread(s), seed {:#x}",
        args.faults,
        n_workloads,
        spec.shards().len(),
        executor.threads(),
        args.seed
    );
    let started = Instant::now();
    let summary = {
        let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut agg];
        if let Some((s, _)) = csv.as_mut() {
            sinks.push(s);
        }
        if let Some((s, _)) = jsonl.as_mut() {
            sinks.push(s);
        }
        if let Some((s, _)) = trace.as_mut() {
            sinks.push(s);
        }
        if let Some((s, _)) = sample.as_mut() {
            sinks.push(s);
        }
        if let Some((s, _)) = metrics.as_mut() {
            sinks.push(s);
        }
        run_campaign(&spec, &executor, &mut sinks)?
    };
    let wall = started.elapsed();

    if !args.quiet {
        println!(
            "\n{:<14} {:>7} {:>7} {:>7} {:>9} {:>9} {:>9} {:>8}",
            "benchmark", "inj", "det", "masked", "mean(ns)", "p99(ns)", "max(ns)", "<3us"
        );
        for (name, stats) in agg.per_workload() {
            println!(
                "{:<14} {:>7} {:>7} {:>7} {:>9.1} {:>9.1} {:>9.1} {:>7.2}%",
                name,
                stats.faults,
                stats.detected,
                stats.masked,
                stats.mean_ns(),
                stats.percentile_ns(0.99),
                stats.max_ns(),
                stats.fraction_under(3000.0) * 100.0
            );
        }
    }
    let overall = agg.overall();
    println!(
        "\ntotal: {} injected, {} detected, {} masked, {} pending",
        summary.faults, summary.detected, summary.masked, summary.pending
    );
    if args.recover {
        println!(
            "recovery: {} rollback(s), {} episode(s) recovered, {} unrecovered, \
             storage high-water {} byte(s)",
            summary.rollbacks, summary.recovered, summary.unrecovered, summary.storage_bytes_hwm
        );
    }
    println!(
        "latency: mean {:.1} ns, p50 {:.1} ns, p99 {:.1} ns, p99.9 {:.1} ns, max {:.1} ns",
        overall.mean_ns(),
        overall.percentile_ns(0.50),
        overall.percentile_ns(0.99),
        overall.percentile_ns(0.999),
        overall.max_ns()
    );
    println!(
        "simulated {} cycles / {} insts across {} shards ({} program build(s)) in {:.2?} \
         ({:.0} faults/s)",
        summary.sim_cycles,
        summary.committed,
        summary.shards,
        summary.workloads_built,
        wall,
        summary.faults as f64 / wall.as_secs_f64().max(1e-9)
    );

    // Per-workload summary CSV.
    let summary_path = args.out.join("campaign_summary.csv");
    let mut f = BufWriter::new(File::create(&summary_path)?);
    writeln!(
        f,
        "workload,faults,detected,masked,pending,mean_ns,p50_ns,p99_ns,p999_ns,max_ns,frac_under_3us"
    )?;
    for (name, s) in agg.per_workload() {
        writeln!(
            f,
            "{},{},{},{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.5}",
            name,
            s.faults,
            s.detected,
            s.masked,
            s.pending,
            s.mean_ns(),
            s.percentile_ns(0.50),
            s.percentile_ns(0.99),
            s.percentile_ns(0.999),
            s.max_ns(),
            s.fraction_under(3000.0)
        )?;
    }
    f.flush()?;
    println!("[csv] {}", summary_path.display());
    if let Some((_, path)) = &csv {
        println!("[csv] {}", path.display());
    }
    if let Some((_, path)) = &jsonl {
        println!("[jsonl] {}", path.display());
    }
    if let Some((_, path)) = &trace {
        println!("[trace] {}", path.display());
    }
    if let Some((_, path)) = &sample {
        println!("[sample] {}", path.display());
    }
    if let Some((_, path)) = &metrics {
        println!("[metrics] {}", path.display());
    }
    Ok(())
}
