//! A small work-stealing executor with deterministic result ordering.
//!
//! Workers pull task indices from a shared atomic counter — the
//! degenerate (and contention-free) form of work stealing where every
//! thread steals from one global queue — so a slow shard never idles
//! the other threads. Results stream back over a channel and are
//! re-sequenced into task order before they reach the caller, which is
//! what makes campaign output *byte-identical regardless of thread
//! count*: the consumer observes results in task order whether one
//! thread or sixteen produced them.

use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Fixed-size pool of worker threads pulling from a shared task queue.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor with `threads` workers; `0` means one per available
    /// hardware thread.
    pub fn new(threads: usize) -> Executor {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
        } else {
            threads
        };
        Executor { threads }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `work` over every item on the pool and hands each result to
    /// `consume` **in item order**, streaming: result `i` is consumed as
    /// soon as results `0..=i` all exist, while later items are still
    /// running. A panicking task propagates to the caller.
    pub fn map_ordered<I, T, F, C>(&self, items: &[I], work: F, mut consume: C)
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
        C: FnMut(usize, T),
    {
        if items.is_empty() {
            return;
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let workers = self.threads.min(items.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let tx = tx.clone();
                    let next = &next;
                    let work = &work;
                    s.spawn(move || loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= items.len() {
                            break;
                        }
                        let out = work(idx, &items[idx]);
                        if tx.send((idx, out)).is_err() {
                            break; // receiver gone: a sibling panicked
                        }
                    })
                })
                .collect();
            drop(tx);
            // Re-sequence: emit the contiguous prefix as it completes.
            let mut pending = BTreeMap::new();
            let mut emitted = 0usize;
            for (idx, out) in rx {
                pending.insert(idx, out);
                while let Some(out) = pending.remove(&emitted) {
                    consume(emitted, out);
                    emitted += 1;
                }
            }
            // Join explicitly so a worker's panic payload (not the
            // scope's generic message) reaches the caller.
            for h in handles {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
    }

    /// Generalises [`Executor::map_ordered`] from a fixed grid to
    /// feedback-driven work: `next_round` produces each round's items
    /// *after* seeing every previous round's consumed results, so later
    /// work can depend on earlier outcomes (the coverage-guided fuzzer's
    /// mutate → evaluate → corpus-update loop). Within a round, items
    /// run work-stealing in parallel and are consumed in item order;
    /// rounds are strictly sequential. An empty round ends the loop.
    ///
    /// Because round boundaries and consumption order are independent
    /// of the thread count, any state threaded through `next_round` /
    /// `consume` evolves identically at `--threads 1` and `--threads
    /// 16` — the same determinism contract as the grid API, extended to
    /// dynamically generated work.
    pub fn map_rounds<I, T, F, G, C>(&self, mut next_round: G, work: F, mut consume: C)
    where
        I: Sync,
        T: Send,
        G: FnMut(usize) -> Vec<I>,
        F: Fn(usize, &I) -> T + Sync,
        C: FnMut(usize, &I, T),
    {
        let mut round = 0usize;
        let mut base = 0usize; // global index of this round's first item
        loop {
            let items = next_round(round);
            if items.is_empty() {
                return;
            }
            self.map_ordered(
                &items,
                |i, item| work(base + i, item),
                |i, out| consume(base + i, &items[i], out),
            );
            base += items.len();
            round += 1;
        }
    }

    /// Runs `work` over every item and returns the results in item
    /// order. A panicking task propagates to the caller.
    pub fn map<I, T, F>(&self, items: &[I], work: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let mut out = Vec::with_capacity(items.len());
        self.map_ordered(items, work, |_idx, v| out.push(v));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn results_arrive_in_item_order() {
        let items: Vec<u64> = (0..50).collect();
        for threads in [1, 2, 8] {
            let ex = Executor::new(threads);
            let out = ex.map(&items, |i, &x| {
                // Reverse the natural completion order.
                std::thread::sleep(Duration::from_micros(200 - 2 * i as u64));
                x * 10
            });
            assert_eq!(out, items.iter().map(|x| x * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn consume_sees_contiguous_prefix() {
        let items: Vec<usize> = (0..20).collect();
        let mut seen = Vec::new();
        Executor::new(4).map_ordered(
            &items,
            |_, &x| x,
            |idx, v| {
                assert_eq!(idx, v);
                seen.push(idx);
            },
        );
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let runs = AtomicUsize::new(0);
        let items = vec![(); 113];
        let out = Executor::new(7).map(&items, |i, _| {
            runs.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(runs.load(Ordering::Relaxed), 113);
        assert_eq!(out.len(), 113);
    }

    #[test]
    fn map_rounds_feeds_results_forward_deterministically() {
        // Each round's items derive from consumed results so far; the
        // evolution must not depend on the thread count.
        let run_with = |threads: usize| {
            let sum = std::cell::Cell::new(0u64);
            let mut trace: Vec<(usize, u64)> = Vec::new();
            Executor::new(threads).map_rounds(
                |round| {
                    if round == 4 {
                        return Vec::new();
                    }
                    // Round contents depend on everything consumed so far.
                    (0..3 + sum.get() % 5).map(|i| sum.get() + i).collect::<Vec<u64>>()
                },
                |_global, &x| x * 2 + 1,
                |global, &item, out| {
                    assert_eq!(out, item * 2 + 1);
                    sum.set(sum.get() + out);
                    trace.push((global, out));
                },
            );
            (sum.get(), trace)
        };
        let one = run_with(1);
        assert_eq!(one, run_with(4));
        assert_eq!(one, run_with(8));
        // Global indices are dense across rounds.
        assert!(one.1.iter().enumerate().all(|(i, &(g, _))| g == i));
    }

    #[test]
    fn zero_threads_means_hardware_parallelism() {
        assert!(Executor::new(0).threads() >= 1);
        assert_eq!(Executor::new(3).threads(), 3);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Executor::new(4).map(&[] as &[u8], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..8).collect();
        Executor::new(2).map(&items, |i, _| {
            if i == 3 {
                panic!("task 3 exploded");
            }
            i
        });
    }
}
