//! A small work-stealing executor with deterministic result ordering.
//!
//! Workers pull task indices from a shared atomic counter — the
//! degenerate (and contention-free) form of work stealing where every
//! thread steals from one global queue — so a slow shard never idles
//! the other threads. Results stream back over a channel and are
//! re-sequenced into task order before they reach the caller, which is
//! what makes campaign output *byte-identical regardless of thread
//! count*: the consumer observes results in task order whether one
//! thread or sixteen produced them.

use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Fixed-size pool of worker threads pulling from a shared task queue.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor with `threads` workers; `0` means one per available
    /// hardware thread.
    pub fn new(threads: usize) -> Executor {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
        } else {
            threads
        };
        Executor { threads }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `work` over every item on the pool and hands each result to
    /// `consume` **in item order**, streaming: result `i` is consumed as
    /// soon as results `0..=i` all exist, while later items are still
    /// running. A panicking task propagates to the caller.
    pub fn map_ordered<I, T, F, C>(&self, items: &[I], work: F, mut consume: C)
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
        C: FnMut(usize, T),
    {
        if items.is_empty() {
            return;
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let workers = self.threads.min(items.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let tx = tx.clone();
                    let next = &next;
                    let work = &work;
                    s.spawn(move || loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= items.len() {
                            break;
                        }
                        let out = work(idx, &items[idx]);
                        if tx.send((idx, out)).is_err() {
                            break; // receiver gone: a sibling panicked
                        }
                    })
                })
                .collect();
            drop(tx);
            // Re-sequence: emit the contiguous prefix as it completes.
            let mut pending = BTreeMap::new();
            let mut emitted = 0usize;
            for (idx, out) in rx {
                pending.insert(idx, out);
                while let Some(out) = pending.remove(&emitted) {
                    consume(emitted, out);
                    emitted += 1;
                }
            }
            // Join explicitly so a worker's panic payload (not the
            // scope's generic message) reaches the caller.
            for h in handles {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
    }

    /// Runs `work` over every item and returns the results in item
    /// order. A panicking task propagates to the caller.
    pub fn map<I, T, F>(&self, items: &[I], work: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let mut out = Vec::with_capacity(items.len());
        self.map_ordered(items, work, |_idx, v| out.push(v));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn results_arrive_in_item_order() {
        let items: Vec<u64> = (0..50).collect();
        for threads in [1, 2, 8] {
            let ex = Executor::new(threads);
            let out = ex.map(&items, |i, &x| {
                // Reverse the natural completion order.
                std::thread::sleep(Duration::from_micros(200 - 2 * i as u64));
                x * 10
            });
            assert_eq!(out, items.iter().map(|x| x * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn consume_sees_contiguous_prefix() {
        let items: Vec<usize> = (0..20).collect();
        let mut seen = Vec::new();
        Executor::new(4).map_ordered(
            &items,
            |_, &x| x,
            |idx, v| {
                assert_eq!(idx, v);
                seen.push(idx);
            },
        );
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let runs = AtomicUsize::new(0);
        let items = vec![(); 113];
        let out = Executor::new(7).map(&items, |i, _| {
            runs.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(runs.load(Ordering::Relaxed), 113);
        assert_eq!(out.len(), 113);
    }

    #[test]
    fn zero_threads_means_hardware_parallelism() {
        assert!(Executor::new(0).threads() >= 1);
        assert_eq!(Executor::new(3).threads(), 3);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Executor::new(4).map(&[] as &[u8], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..8).collect();
        Executor::new(2).map(&items, |i, _| {
            if i == 3 {
                panic!("task 3 exploded");
            }
            i
        });
    }
}
