//! A small work-stealing executor with deterministic result ordering.
//!
//! Workers pull task indices from a shared atomic counter — the
//! degenerate (and contention-free) form of work stealing where every
//! thread steals from one global queue — so a slow shard never idles
//! the other threads. Results stream back over a channel and are
//! re-sequenced into task order before they reach the caller, which is
//! what makes campaign output *byte-identical regardless of thread
//! count*: the consumer observes results in task order whether one
//! thread or sixteen produced them.

use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};

/// Fixed-size pool of worker threads pulling from a shared task queue.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
    window: usize,
}

impl Executor {
    /// An executor with `threads` workers; `0` means one per available
    /// hardware thread. The streaming window starts unbounded — see
    /// [`Executor::stream_window`].
    pub fn new(threads: usize) -> Executor {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
        } else {
            threads
        };
        Executor { threads, window: 0 }
    }

    /// Bounds how far ahead of the consumed prefix workers may run
    /// (`0` = unbounded): a worker does not *start* item `i` until
    /// fewer than `window` items past the consumed watermark are in
    /// flight or buffered. This is the backpressure knob for streaming
    /// consumers: without it, one slow early shard lets every later
    /// shard's full result (records plus `--trace`/`--sample` payloads)
    /// pile up in the re-sequencing buffer, so peak memory is O(items);
    /// with it, at most `window` results are ever held. Output bytes
    /// are unchanged — only the schedule is throttled. `meek-serve`
    /// applies the same bound to its per-job streaming path.
    #[must_use]
    pub fn stream_window(mut self, window: usize) -> Executor {
        self.window = window;
        self
    }

    /// The configured streaming window (`0` = unbounded).
    pub fn window(&self) -> usize {
        self.window
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `work` over every item on the pool and hands each result to
    /// `consume` **in item order**, streaming: result `i` is consumed as
    /// soon as results `0..=i` all exist, while later items are still
    /// running. With a non-zero [`Executor::stream_window`], at most
    /// `window` results ever sit completed-but-unconsumed. A panicking
    /// task propagates to the caller.
    pub fn map_ordered<I, T, F, C>(&self, items: &[I], work: F, mut consume: C)
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
        C: FnMut(usize, T),
    {
        if items.is_empty() {
            return;
        }
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let workers = self.threads.min(items.len());
        let gate = Gate::new();
        let window = self.window;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let tx = tx.clone();
                    let next = &next;
                    let work = &work;
                    let gate = &gate;
                    s.spawn(move || {
                        // If this worker panics inside `work`, wake any
                        // siblings parked on the gate so they can exit
                        // (dropping their senders) instead of waiting
                        // for a watermark that will never advance.
                        let _poison = PoisonOnPanic(gate);
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= items.len() {
                                break;
                            }
                            if window > 0 && !gate.wait_until_open(idx, window) {
                                break; // a sibling panicked while we waited
                            }
                            let out = work(idx, &items[idx]);
                            if tx.send((idx, out)).is_err() {
                                break; // receiver gone: a sibling panicked
                            }
                        }
                    })
                })
                .collect();
            drop(tx);
            // Re-sequence: emit the contiguous prefix as it completes.
            let mut pending = BTreeMap::new();
            let mut emitted = 0usize;
            for (idx, out) in rx {
                pending.insert(idx, out);
                while let Some(out) = pending.remove(&emitted) {
                    consume(emitted, out);
                    emitted += 1;
                }
                if window > 0 {
                    gate.advance(emitted);
                }
            }
            // Join explicitly so a worker's panic payload (not the
            // scope's generic message) reaches the caller.
            for h in handles {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
    }

    /// Generalises [`Executor::map_ordered`] from a fixed grid to
    /// feedback-driven work: `next_round` produces each round's items
    /// *after* seeing every previous round's consumed results, so later
    /// work can depend on earlier outcomes (the coverage-guided fuzzer's
    /// mutate → evaluate → corpus-update loop). Within a round, items
    /// run work-stealing in parallel and are consumed in item order;
    /// rounds are strictly sequential. An empty round ends the loop.
    ///
    /// Because round boundaries and consumption order are independent
    /// of the thread count, any state threaded through `next_round` /
    /// `consume` evolves identically at `--threads 1` and `--threads
    /// 16` — the same determinism contract as the grid API, extended to
    /// dynamically generated work.
    pub fn map_rounds<I, T, F, G, C>(&self, mut next_round: G, work: F, mut consume: C)
    where
        I: Sync,
        T: Send,
        G: FnMut(usize) -> Vec<I>,
        F: Fn(usize, &I) -> T + Sync,
        C: FnMut(usize, &I, T),
    {
        let mut round = 0usize;
        let mut base = 0usize; // global index of this round's first item
        loop {
            let items = next_round(round);
            if items.is_empty() {
                return;
            }
            self.map_ordered(
                &items,
                |i, item| work(base + i, item),
                |i, out| consume(base + i, &items[i], out),
            );
            base += items.len();
            round += 1;
        }
    }

    /// Runs `work` over every item and returns the results in item
    /// order. A panicking task propagates to the caller.
    pub fn map<I, T, F>(&self, items: &[I], work: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let mut out = Vec::with_capacity(items.len());
        self.map_ordered(items, work, |_idx, v| out.push(v));
        out
    }
}

/// The streaming-window gate: workers park here until their claimed
/// index falls inside `consumed watermark + window`. Deadlock-free
/// because index claims are dense and the watermark is contiguous:
/// whichever worker holds the lowest unfinished index always satisfies
/// `idx < emitted + window` (window ≥ 1), so some thread can make
/// progress until everything is consumed.
struct Gate {
    emitted: Mutex<usize>,
    advanced: Condvar,
    poisoned: AtomicBool,
}

impl Gate {
    fn new() -> Gate {
        Gate { emitted: Mutex::new(0), advanced: Condvar::new(), poisoned: AtomicBool::new(false) }
    }

    /// Blocks until `idx` is within `window` of the consumed watermark.
    /// Returns `false` if a sibling panicked while we waited.
    fn wait_until_open(&self, idx: usize, window: usize) -> bool {
        let mut emitted = self.emitted.lock().expect("gate lock");
        while idx >= *emitted + window {
            if self.poisoned.load(Ordering::Acquire) {
                return false;
            }
            emitted = self.advanced.wait(emitted).expect("gate lock");
        }
        true
    }

    fn advance(&self, emitted: usize) {
        *self.emitted.lock().expect("gate lock") = emitted;
        self.advanced.notify_all();
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        drop(self.emitted.lock().expect("gate lock"));
        self.advanced.notify_all();
    }
}

/// Poisons the gate when dropped during a panic unwind.
struct PoisonOnPanic<'a>(&'a Gate);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn results_arrive_in_item_order() {
        let items: Vec<u64> = (0..50).collect();
        for threads in [1, 2, 8] {
            let ex = Executor::new(threads);
            let out = ex.map(&items, |i, &x| {
                // Reverse the natural completion order.
                std::thread::sleep(Duration::from_micros(200 - 2 * i as u64));
                x * 10
            });
            assert_eq!(out, items.iter().map(|x| x * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn consume_sees_contiguous_prefix() {
        let items: Vec<usize> = (0..20).collect();
        let mut seen = Vec::new();
        Executor::new(4).map_ordered(
            &items,
            |_, &x| x,
            |idx, v| {
                assert_eq!(idx, v);
                seen.push(idx);
            },
        );
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let runs = AtomicUsize::new(0);
        let items = vec![(); 113];
        let out = Executor::new(7).map(&items, |i, _| {
            runs.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(runs.load(Ordering::Relaxed), 113);
        assert_eq!(out.len(), 113);
    }

    #[test]
    fn map_rounds_feeds_results_forward_deterministically() {
        // Each round's items derive from consumed results so far; the
        // evolution must not depend on the thread count.
        let run_with = |threads: usize| {
            let sum = std::cell::Cell::new(0u64);
            let mut trace: Vec<(usize, u64)> = Vec::new();
            Executor::new(threads).map_rounds(
                |round| {
                    if round == 4 {
                        return Vec::new();
                    }
                    // Round contents depend on everything consumed so far.
                    (0..3 + sum.get() % 5).map(|i| sum.get() + i).collect::<Vec<u64>>()
                },
                |_global, &x| x * 2 + 1,
                |global, &item, out| {
                    assert_eq!(out, item * 2 + 1);
                    sum.set(sum.get() + out);
                    trace.push((global, out));
                },
            );
            (sum.get(), trace)
        };
        let one = run_with(1);
        assert_eq!(one, run_with(4));
        assert_eq!(one, run_with(8));
        // Global indices are dense across rounds.
        assert!(one.1.iter().enumerate().all(|(i, &(g, _))| g == i));
    }

    #[test]
    fn zero_threads_means_hardware_parallelism() {
        assert!(Executor::new(0).threads() >= 1);
        assert_eq!(Executor::new(3).threads(), 3);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Executor::new(4).map(&[] as &[u8], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..8).collect();
        Executor::new(2).map(&items, |i, _| {
            if i == 3 {
                panic!("task 3 exploded");
            }
            i
        });
    }

    #[test]
    fn stream_window_bounds_run_ahead_without_changing_output() {
        let items: Vec<u64> = (0..60).collect();
        for (threads, window) in [(4, 1), (4, 3), (8, 2), (2, 5)] {
            let consumed = AtomicUsize::new(0);
            let mut out = Vec::new();
            Executor::new(threads).stream_window(window).map_ordered(
                &items,
                |i, &x| {
                    // The gate admitted `i`, so the consumed watermark
                    // had already reached past `i - window` — and the
                    // snapshot read here can only be newer (larger).
                    let watermark = consumed.load(Ordering::SeqCst);
                    assert!(
                        i < watermark + window,
                        "item {i} started with watermark {watermark}, window {window}"
                    );
                    if i == 0 {
                        // Stall the prefix so later items would race far
                        // ahead if the window were not enforced.
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    x * 7
                },
                |_idx, v| {
                    out.push(v);
                    consumed.fetch_add(1, Ordering::SeqCst);
                },
            );
            assert_eq!(out, items.iter().map(|x| x * 7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn stream_window_output_matches_unbounded() {
        let items: Vec<u64> = (0..40).collect();
        let unbounded = Executor::new(8).map(&items, |i, &x| x.wrapping_mul(i as u64 + 3));
        for window in [1, 2, 7] {
            let bounded = Executor::new(8)
                .stream_window(window)
                .map(&items, |i, &x| x.wrapping_mul(i as u64 + 3));
            assert_eq!(bounded, unbounded);
        }
    }

    #[test]
    #[should_panic(expected = "task 1 exploded")]
    fn worker_panic_does_not_deadlock_windowed_siblings() {
        // Task 1 panics while siblings may be parked on the gate; the
        // poison path must wake them so the panic still propagates.
        let items: Vec<usize> = (0..32).collect();
        Executor::new(4).stream_window(2).map(&items, |i, _| {
            if i == 1 {
                std::thread::sleep(Duration::from_millis(5));
                panic!("task 1 exploded");
            }
            i
        });
    }
}
