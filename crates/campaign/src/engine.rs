//! The campaign engine: expands a [`CampaignSpec`] into shards, runs
//! them on the work-stealing [`Executor`], and streams every shard's
//! detections through the configured sinks in deterministic order.
//!
//! Each worker builds its own simulation through the typed
//! [`meek_core::SimBuilder`] (systems are `Send` but a simulation is
//! single-threaded by nature); the *programs* under test are built
//! once per benchmark in a shared [`WorkloadCache`] and shared by
//! reference, so codegen cost is O(benchmarks), not O(faults). With
//! [`CampaignSpec::trace_events`] set, each shard additionally
//! attaches the JSONL event observer and ships its structured trace
//! through the sinks' trace channel; with a non-zero
//! [`CampaignSpec::sample_stride`], a [`SamplingObserver`] ships each
//! shard's ROB-occupancy / fabric-depth time series the same way.

use crate::executor::Executor;
use crate::sink::{CampaignRecord, RecordSink, ShardSummary};
use crate::spec::{CampaignSpec, CampaignWorkload, ShardSpec, DEFAULT_METRICS_STRIDE};
use meek_core::{validate_config, JsonlEventSink, SamplingObserver, SharedBuf, Sim};
use meek_telemetry::MetricsObserver;
use meek_workloads::WorkloadCache;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};

/// Campaign-wide roll-up returned by [`run_campaign`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Shards simulated.
    pub shards: usize,
    /// Faults queued across all shards.
    pub faults: usize,
    /// Faults detected by the checkers.
    pub detected: usize,
    /// Faults masked (flipped bit was architecturally dead).
    pub masked: u64,
    /// Faults with no verdict when their shard drained.
    pub pending: usize,
    /// Segments verified clean across all shards.
    pub verified_segments: u64,
    /// Segments that failed verification across all shards.
    pub failed_segments: u64,
    /// Big-core cycles simulated (sum over shards).
    pub sim_cycles: u64,
    /// Instructions committed (sum over shards).
    pub committed: u64,
    /// Distinct programs synthesised.
    pub workloads_built: usize,
    /// Recovery rollbacks executed across all shards.
    pub rollbacks: u64,
    /// Failure episodes fully recovered across all shards.
    pub recovered: u64,
    /// Failure episodes abandoned across all shards.
    pub unrecovered: u64,
    /// Largest recovery-storage high-water mark any shard reached.
    pub storage_bytes_hwm: u64,
}

/// Result of one shard's simulation, in deterministic shard order.
///
/// Public so external schedulers (`meek-serve`) can run shards
/// individually via [`run_shard`] and persist results at shard
/// granularity; the batch path consumes these through [`run_campaign`].
#[derive(Debug, Clone)]
pub struct ShardResult {
    /// Detection records in injection order.
    pub records: Vec<CampaignRecord>,
    /// The shard's summary counters.
    pub summary: ShardSummary,
    /// Serialised JSONL event trace (empty when tracing is off).
    pub trace: Vec<u8>,
    /// Serialised occupancy time series (empty when sampling is off).
    pub samples: Vec<u8>,
    /// Rendered metrics registry ([`meek_telemetry::Registry::render`]
    /// text; empty when metrics collection is off).
    pub metrics: Vec<u8>,
}

/// An empty result for a shard skipped after campaign cancellation.
fn cancelled_shard(shard: &ShardSpec) -> ShardResult {
    ShardResult {
        records: Vec::new(),
        summary: ShardSummary {
            workload: shard.workload,
            shard: shard.shard_in_workload,
            faults: 0,
            detected: 0,
            masked: 0,
            pending: 0,
            verified_segments: 0,
            failed_segments: 0,
            cycles: 0,
            committed: 0,
            rollbacks: 0,
            recovered: 0,
            unrecovered: 0,
            storage_bytes_hwm: 0,
        },
        trace: Vec::new(),
        samples: Vec::new(),
        metrics: Vec::new(),
    }
}

/// Runs one shard: build (or reuse) the program, queue the shard's
/// faults, simulate to drain, and package the detections.
///
/// The caller must have validated `spec.config` (see
/// [`meek_core::validate_config`]); [`run_campaign`] does so up front,
/// and `meek-serve` validates at job admission.
pub fn run_shard(spec: &CampaignSpec, cache: &WorkloadCache, shard: &ShardSpec) -> ShardResult {
    let source = &spec.workloads[shard.workload_idx];
    let seed = spec.workload_seed(source.name());
    let workload = match source {
        CampaignWorkload::Profile(p) => cache.get(p, seed),
        CampaignWorkload::Prog(k) => {
            cache.get_with(k.name, seed, || meek_progs::suite::workload(k))
        }
        CampaignWorkload::ProgSet => {
            cache.get_with(meek_progs::SET_NAME, seed, || meek_progs::WorkloadSet::all().fuse())
        }
    };
    let faults = shard.fault_specs();
    let n_faults = faults.len();
    let mut builder =
        Sim::builder(&workload, shard.insts).config(spec.config.clone()).faults(faults);
    // With tracing on, the JSONL event observer serialises the shard's
    // structured event stream; every line carries the shard's identity
    // so the re-sequenced global trace stays self-describing.
    let trace_buf = spec.trace_events.then(SharedBuf::new);
    if let Some(buf) = &trace_buf {
        let prefix =
            format!("\"workload\":\"{}\",\"shard\":{},", shard.workload, shard.shard_in_workload);
        builder = builder.observe(JsonlEventSink::with_prefix(buf.clone(), prefix));
    }
    // With sampling on, a SamplingObserver keeps the shard's ROB /
    // fabric-depth time series, rendered with shard identity columns.
    let sampler = (spec.sample_stride > 0).then(|| SamplingObserver::new(spec.sample_stride));
    if let Some(s) = &sampler {
        builder = builder.observe(s.clone());
    }
    // With metrics on, a MetricsObserver accumulates the shard's
    // registry (latency/occupancy histograms, verdict counters); its
    // rendered text rides the metrics channel and is merged in shard
    // order by the sink, keeping the campaign-wide registry
    // thread-count invariant.
    let metrics = spec.metrics.then(|| {
        let stride =
            if spec.sample_stride > 0 { spec.sample_stride } else { DEFAULT_METRICS_STRIDE };
        MetricsObserver::new(stride)
    });
    if let Some(m) = &metrics {
        builder = builder.observe(m.clone());
    }
    // Infallible: run_campaign validated the config up front, and
    // shard fault plans always arm inside the instruction budget.
    let report = builder.build().expect("validated by run_campaign").run().report;
    let pending = report.pending_faults;
    let records: Vec<CampaignRecord> = report
        .detections
        .iter()
        .map(|d| CampaignRecord {
            workload: shard.workload,
            shard: shard.shard_in_workload,
            detection: *d,
        })
        .collect();
    ShardResult {
        summary: ShardSummary {
            workload: shard.workload,
            shard: shard.shard_in_workload,
            faults: n_faults,
            detected: records.len(),
            masked: report.missed_faults,
            pending,
            verified_segments: report.verified_segments,
            failed_segments: report.failed_segments,
            cycles: report.cycles,
            committed: report.committed,
            rollbacks: report.recovery.rollbacks,
            recovered: report.recovery.recovered,
            unrecovered: report.recovery.unrecovered,
            storage_bytes_hwm: report.recovery.storage_bytes_hwm,
        },
        records,
        trace: trace_buf.map(|b| b.take_bytes()).unwrap_or_default(),
        samples: sampler
            .map(|s| {
                s.render_csv(&format!("{},{},", shard.workload, shard.shard_in_workload))
                    .into_bytes()
            })
            .unwrap_or_default(),
        metrics: metrics.map(|m| m.render().into_bytes()).unwrap_or_default(),
    }
}

/// Runs the whole campaign on `executor`, streaming records and shard
/// summaries through `sinks` in shard order (records within a shard
/// stay in injection order). Returns the campaign roll-up.
///
/// Results are **independent of the executor's thread count**: shards
/// are self-contained, their RNG streams are derived from the spec, and
/// sink delivery is re-sequenced into shard order.
///
/// # Errors
///
/// Returns a degenerate `spec.config` (zero little cores, recovery
/// without checkpoints) as an error up front, and the first sink I/O
/// error thereafter; simulation itself does not fail (a shard that
/// cannot drain is a liveness bug and panics).
pub fn run_campaign(
    spec: &CampaignSpec,
    executor: &Executor,
    sinks: &mut [&mut dyn RecordSink],
) -> io::Result<CampaignSummary> {
    // Surface a bad config as a typed error on the caller's thread —
    // the per-shard builds below are then infallible.
    validate_config(&spec.config).map_err(io::Error::other)?;
    let shards = spec.shards();
    let cache = WorkloadCache::new();
    let mut summary = CampaignSummary { shards: shards.len(), ..CampaignSummary::default() };
    let mut sink_err: Option<io::Error> = None;
    // Set on the first sink error: a full campaign can be hours of
    // simulation, all of it discarded once the run is doomed, so
    // workers skip any shard they pick up after the flag is raised.
    let cancelled = AtomicBool::new(false);
    executor.map_ordered(
        &shards,
        |_idx, shard| {
            if cancelled.load(Ordering::Relaxed) {
                cancelled_shard(shard)
            } else {
                run_shard(spec, &cache, shard)
            }
        },
        |_idx, result: ShardResult| {
            let s = &result.summary;
            summary.faults += s.faults;
            summary.detected += s.detected;
            summary.masked += s.masked;
            summary.pending += s.pending;
            summary.verified_segments += s.verified_segments;
            summary.failed_segments += s.failed_segments;
            summary.sim_cycles += s.cycles;
            summary.committed += s.committed;
            summary.rollbacks += s.rollbacks;
            summary.recovered += s.recovered;
            summary.unrecovered += s.unrecovered;
            summary.storage_bytes_hwm = summary.storage_bytes_hwm.max(s.storage_bytes_hwm);
            if sink_err.is_some() {
                return; // keep draining workers, stop writing
            }
            for sink in sinks.iter_mut() {
                let r = result
                    .records
                    .iter()
                    .try_for_each(|rec| sink.on_record(rec))
                    .and_then(|()| sink.on_trace(&result.trace))
                    .and_then(|()| sink.on_samples(&result.samples))
                    .and_then(|()| sink.on_metrics(&result.metrics))
                    .and_then(|()| sink.on_shard(s));
                if let Err(e) = r {
                    sink_err = Some(e);
                    cancelled.store(true, Ordering::Relaxed);
                    break;
                }
            }
        },
    );
    if let Some(e) = sink_err {
        return Err(e);
    }
    for sink in sinks.iter_mut() {
        sink.finish()?;
    }
    summary.workloads_built = cache.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{AggregateSink, CsvSink};
    use meek_workloads::parsec3;

    fn tiny_spec() -> CampaignSpec {
        // blackscholes: the smallest code footprint in the PARSEC set.
        let profiles = vec![parsec3()[0].clone()];
        let mut spec = CampaignSpec::new(profiles, 6, 0xD15EA5E);
        spec.faults_per_shard = 3;
        spec
    }

    #[test]
    fn every_fault_is_accounted_for() {
        let spec = tiny_spec();
        let mut agg = AggregateSink::new();
        let summary = {
            let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut agg];
            run_campaign(&spec, &Executor::new(2), &mut sinks).unwrap()
        };
        assert_eq!(summary.shards, 2);
        assert_eq!(summary.faults, 6);
        assert_eq!(
            summary.detected + summary.masked as usize + summary.pending,
            summary.faults,
            "fault bookkeeping must balance: {summary:?}"
        );
        assert!(summary.detected > 0, "a campaign this size must detect something");
        // A corrupted checkpoint is both one segment's ERCP and the
        // next one's SRCP, so a single detection can fail two segments.
        assert!(summary.failed_segments >= summary.detected as u64);
        assert_eq!(summary.workloads_built, 1, "one benchmark, one build");
        let overall = agg.overall();
        assert_eq!(overall.detected, summary.detected);
        assert!(overall.mean_ns() > 0.0);
    }

    #[test]
    fn recovery_campaign_recovers_every_detection() {
        let mut spec = tiny_spec();
        spec.config = meek_core::MeekConfig::with_recovery(4, meek_core::RecoveryPolicy::enabled());
        let mut agg = AggregateSink::new();
        let summary = {
            let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut agg];
            run_campaign(&spec, &Executor::new(2), &mut sinks).unwrap()
        };
        assert!(summary.detected > 0);
        assert!(summary.rollbacks > 0, "detections must trigger rollbacks: {summary:?}");
        assert_eq!(summary.unrecovered, 0, "every episode must recover: {summary:?}");
        assert!(summary.recovered > 0 && summary.recovered <= summary.rollbacks, "{summary:?}");
        assert!(summary.storage_bytes_hwm > 0, "checkpoints and undo-log must be accounted");
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let spec = tiny_spec();
        let run_with = |executor: Executor| {
            let mut csv = CsvSink::new(Vec::new());
            let summary = {
                let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut csv];
                run_campaign(&spec, &executor, &mut sinks).unwrap()
            };
            (summary, csv.into_inner())
        };
        let (s1, bytes1) = run_with(Executor::new(1));
        let (s4, bytes4) = run_with(Executor::new(4));
        assert_eq!(s1, s4);
        assert_eq!(bytes1, bytes4, "CSV output must be byte-identical across thread counts");
        // A bounded streaming window throttles the schedule, never the
        // bytes.
        let (sw, bytes_w) = run_with(Executor::new(4).stream_window(1));
        assert_eq!(s1, sw);
        assert_eq!(bytes1, bytes_w, "stream window must not change output");
    }

    #[test]
    fn metrics_registry_is_thread_count_invariant_and_reconciles() {
        let mut spec = tiny_spec();
        spec.metrics = true;
        let run_with = |threads: usize| {
            let mut agg = AggregateSink::new();
            let mut metrics = crate::sink::MetricsSink::new(Vec::new());
            let summary = {
                let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut agg, &mut metrics];
                run_campaign(&spec, &Executor::new(threads), &mut sinks).unwrap()
            };
            (summary, metrics.into_inner())
        };
        let (s1, m1) = run_with(1);
        let (_, m4) = run_with(4);
        let (_, m8) = run_with(8);
        assert_eq!(m1, m4, "metrics must be byte-identical across thread counts");
        assert_eq!(m1, m8);
        let reg = meek_telemetry::Registry::parse(&String::from_utf8(m1).unwrap()).unwrap();
        // One simulation per shard, and every detection accounted for:
        // the per-site counter family and the latency histogram must
        // both sum to exactly the campaign-wide detection total.
        assert_eq!(reg.counter("runs"), s1.shards as u64);
        let detected: u64 =
            reg.counters().filter(|(k, _)| k.starts_with("faults_detected{")).map(|(_, v)| v).sum();
        assert_eq!(detected, s1.detected as u64, "per-site detections must reconcile");
        let latency: u64 = reg
            .hists()
            .filter(|(k, _)| k.starts_with("detection_latency_cycles{"))
            .map(|(_, h)| h.count)
            .sum();
        assert_eq!(latency, detected, "one latency observation per detection");
        assert!(
            reg.hist("rob_occupancy").is_some_and(|h| h.count > 0),
            "the default stride must leave time-series samples"
        );
    }

    #[test]
    fn degenerate_config_is_rejected_up_front() {
        // A bad config must surface as an error from run_campaign, not
        // a panic on a worker thread mid-campaign.
        let mut spec = tiny_spec();
        spec.config.recovery =
            meek_core::RecoveryPolicy { rollback_depth: 0, ..meek_core::RecoveryPolicy::enabled() };
        let mut agg = AggregateSink::new();
        let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut agg];
        let err = run_campaign(&spec, &Executor::new(2), &mut sinks).unwrap_err();
        assert!(err.to_string().contains("rollback_depth 0"), "{err}");
    }

    #[test]
    fn sink_errors_propagate() {
        struct FailingSink;
        impl RecordSink for FailingSink {
            fn on_record(&mut self, _rec: &CampaignRecord) -> io::Result<()> {
                Err(io::Error::other("disk full"))
            }
        }
        let spec = tiny_spec();
        let mut failing = FailingSink;
        let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut failing];
        let err = run_campaign(&spec, &Executor::new(2), &mut sinks).unwrap_err();
        assert_eq!(err.to_string(), "disk full");
    }
}
