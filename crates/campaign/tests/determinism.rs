//! Campaign determinism: the same `CampaignSpec` + seed must produce
//! byte-identical `DetectionRecord` streams at `--threads 1` and
//! `--threads 8`, and re-running a spec must reproduce a prior
//! campaign exactly.

use meek_campaign::{
    run_campaign, AggregateSink, CampaignSpec, CampaignSummary, CsvSink, Executor, JsonlSink,
    RecordSink, SampleSink, TraceSink,
};
use meek_workloads::parsec3;

/// Two benchmarks, three shards each — enough to exercise cross-thread
/// interleaving and the reorder buffer without a long test.
fn spec() -> CampaignSpec {
    let profiles: Vec<_> = parsec3()
        .into_iter()
        .filter(|p| p.name == "blackscholes" || p.name == "swaptions")
        .collect();
    let mut spec = CampaignSpec::new(profiles, 12, 0x5EED_CAFE);
    spec.faults_per_shard = 4;
    spec
}

fn run_with_threads(threads: usize) -> (CampaignSummary, Vec<u8>, Vec<u8>, AggregateSink) {
    let mut csv = CsvSink::new(Vec::new());
    let mut jsonl = JsonlSink::new(Vec::new());
    let mut agg = AggregateSink::new();
    let summary = {
        let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut csv, &mut jsonl, &mut agg];
        run_campaign(&spec(), &Executor::new(threads), &mut sinks).expect("campaign runs")
    };
    (summary, csv.into_inner(), jsonl.into_inner(), agg)
}

#[test]
fn one_thread_and_eight_threads_produce_identical_records() {
    let (s1, csv1, jsonl1, agg1) = run_with_threads(1);
    let (s8, csv8, jsonl8, agg8) = run_with_threads(8);

    assert_eq!(s1, s8, "campaign summaries must match across thread counts");
    assert_eq!(csv1, csv8, "CSV byte streams must be identical");
    assert_eq!(jsonl1, jsonl8, "JSONL byte streams must be identical");
    assert_eq!(
        agg1.overall().latencies_ns(),
        agg8.overall().latencies_ns(),
        "latency samples must be identical"
    );

    // The campaign actually did something worth comparing.
    assert_eq!(s1.faults, 24);
    assert!(s1.detected > 0, "no detections: {s1:?}");
    assert!(!csv1.is_empty());
}

#[test]
fn rerunning_the_same_spec_reproduces_the_campaign() {
    let (a, csv_a, _, _) = run_with_threads(3);
    let (b, csv_b, _, _) = run_with_threads(3);
    assert_eq!(a, b);
    assert_eq!(csv_a, csv_b);
}

#[test]
fn recovery_campaign_is_thread_count_invariant() {
    // The same contract with the full detect->rollback->re-execute
    // loop in play: rollbacks re-execute instructions, annotate
    // detections with recovery latencies, and none of it may depend on
    // worker scheduling.
    let run = |threads: usize| {
        let mut spec = spec();
        spec.config = meek_core::MeekConfig::with_recovery(4, meek_core::RecoveryPolicy::enabled());
        let mut csv = CsvSink::new(Vec::new());
        let mut jsonl = JsonlSink::new(Vec::new());
        let summary = {
            let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut csv, &mut jsonl];
            run_campaign(&spec, &Executor::new(threads), &mut sinks).expect("campaign runs")
        };
        (summary, csv.into_inner(), jsonl.into_inner())
    };
    let (s1, csv1, jsonl1) = run(1);
    let (s8, csv8, jsonl8) = run(8);
    assert_eq!(s1, s8);
    assert_eq!(csv1, csv8, "recovery CSV must be byte-identical across thread counts");
    assert_eq!(jsonl1, jsonl8);
    assert!(s1.rollbacks > 0, "the campaign must actually recover something: {s1:?}");
    assert_eq!(s1.unrecovered, 0);
    let text = String::from_utf8(csv1).unwrap();
    assert!(
        text.lines().next().unwrap().ends_with("recovered,recovery_cycles"),
        "records must carry the recovery-latency columns"
    );
    // At least one record must carry a real per-detection recovery
    // annotation (recovered=1 with a nonzero cycle count), not just
    // summary-level rollback totals.
    assert!(
        text.lines().skip(1).any(|l| {
            let mut cols = l.rsplit(',');
            let cycles = cols.next();
            cols.next() == Some("1") && cycles.is_some_and(|c| c != "0")
        }),
        "no record carries a completed recovery annotation:\n{text}"
    );
}

#[test]
fn event_trace_is_thread_count_invariant() {
    // `--trace` attaches the JSONL event observer to every shard; the
    // re-sequenced global trace must obey the same byte-identity
    // contract as the record sinks.
    let run = |threads: usize| {
        let mut spec = spec();
        spec.trace_events = true;
        let mut trace = TraceSink::new(Vec::new());
        let mut csv = CsvSink::new(Vec::new());
        {
            let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut trace, &mut csv];
            run_campaign(&spec, &Executor::new(threads), &mut sinks).expect("campaign runs");
        }
        (trace.into_inner(), csv.into_inner())
    };
    let (t1, csv1) = run(1);
    let (t8, csv8) = run(8);
    assert_eq!(t1, t8, "event trace must be byte-identical across thread counts");
    assert_eq!(csv1, csv8);
    let text = String::from_utf8(t1).unwrap();
    assert!(!text.is_empty(), "tracing was enabled: the trace must not be empty");
    for line in text.lines() {
        assert!(
            line.starts_with("{\"workload\":\"") && line.contains("\"shard\":"),
            "every line must be shard-contextualised: {line}"
        );
        assert!(line.contains("\"event\":\""), "every line is one typed event: {line}");
    }
    // The stream carries the fault lifecycle, not just segment chatter.
    assert!(text.contains("\"event\":\"fault_injected\""));
    assert!(text.contains("\"event\":\"fault_detected\""));
    assert!(text.contains("\"event\":\"segment_closed\""));
    // Tracing must not perturb the simulation itself.
    let mut spec_untraced = spec();
    spec_untraced.trace_events = false;
    let mut csv_untraced = CsvSink::new(Vec::new());
    {
        let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut csv_untraced];
        run_campaign(&spec_untraced, &Executor::new(4), &mut sinks).expect("campaign runs");
    }
    assert_eq!(csv1, csv_untraced.into_inner(), "tracing must not change the records");
}

#[test]
fn occupancy_samples_are_thread_count_invariant() {
    // `--sample` attaches the per-cycle SamplingObserver to every
    // shard; the re-sequenced time series obeys the same byte-identity
    // contract, and must not perturb the records.
    let run = |threads: usize| {
        let mut spec = spec();
        spec.sample_stride = 32;
        let mut samples = SampleSink::new(Vec::new());
        let mut csv = CsvSink::new(Vec::new());
        {
            let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut samples, &mut csv];
            run_campaign(&spec, &Executor::new(threads), &mut sinks).expect("campaign runs");
        }
        (samples.into_inner(), csv.into_inner())
    };
    let (s1, csv1) = run(1);
    let (s8, csv8) = run(8);
    assert_eq!(s1, s8, "sample series must be byte-identical across thread counts");
    assert_eq!(csv1, csv8);
    let text = String::from_utf8(s1).unwrap();
    let mut lines = text.lines();
    assert_eq!(
        lines.next(),
        Some("workload,shard,cycle,rob_occupancy,fabric_depth,littles_idle,lsl_occupancy"),
        "the series leads with its header"
    );
    let mut saw_rob = false;
    let mut saw_fabric = false;
    for line in lines {
        let cols: Vec<&str> = line.split(',').collect();
        assert_eq!(cols.len(), 7, "seven columns per row: {line}");
        assert!(cols[0] == "blackscholes" || cols[0] == "swaptions", "{line}");
        assert!(cols[2].parse::<u64>().unwrap() % 32 == 0, "stride-32 grid: {line}");
        saw_rob |= cols[3] != "0";
        saw_fabric |= cols[4] != "0";
    }
    assert!(saw_rob, "the ROB must fill at some sampled cycle");
    assert!(saw_fabric, "the fabric must queue packets at some sampled cycle");
    // Sampling must not change the simulation itself.
    let mut unsampled = CsvSink::new(Vec::new());
    {
        let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut unsampled];
        run_campaign(&spec(), &Executor::new(4), &mut sinks).expect("campaign runs");
    }
    assert_eq!(csv1, unsampled.into_inner(), "sampling must not change the records");
}

#[test]
fn different_seeds_produce_different_campaigns() {
    let base = spec();
    let mut reseeded = spec();
    reseeded.seed ^= 0xFFFF;
    let run = |s: &CampaignSpec| {
        let mut csv = CsvSink::new(Vec::new());
        {
            let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut csv];
            run_campaign(s, &Executor::new(4), &mut sinks).expect("campaign runs");
        }
        csv.into_inner()
    };
    assert_ne!(run(&base), run(&reseeded), "the seed must actually steer the campaign");
}
