//! Golden-file tests for the campaign sinks: byte-exact CSV and
//! JSON-lines output for a fixed, synthetic record stream.
//!
//! Campaign output is consumed by offline tooling and compared across
//! runs by the determinism CI job; a formatting drift (column order, a
//! float precision change, a forgotten header) silently invalidates
//! both. These tests pin the exact bytes without simulating anything —
//! the record stream is synthesized from a fixed seed, so a sink
//! regression is caught in milliseconds, not after a full campaign.

use meek_campaign::{AggregateSink, CampaignRecord, CsvSink, JsonlSink, RecordSink, ShardSummary};
use meek_core::fault::{DetectionRecord, FaultSite};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const GOLDEN_CSV: &str = include_str!("golden/records.csv");
const GOLDEN_JSONL: &str = include_str!("golden/records.jsonl");

/// A fixed synthetic campaign: three workloads, two shards each, a
/// handful of detections per shard — every field driven by one seeded
/// stream so the bytes are reproducible forever.
fn synthetic_stream() -> (Vec<CampaignRecord>, Vec<ShardSummary>) {
    let mut rng = SmallRng::seed_from_u64(0x60_1D);
    let mut records = Vec::new();
    let mut shards = Vec::new();
    for workload in ["blackscholes", "mcf", "swaptions"] {
        for shard in 0..2u32 {
            let detections = rng.gen_range(2..5usize);
            let mut recovered = 0u64;
            for _ in 0..detections {
                let injected_cycle = rng.gen_range(1_000..2_000_000u64);
                let delta = rng.gen_range(10..20_000u64);
                // Half the synthetic detections recovered, pinning both
                // states of the recovery-latency columns.
                let recovery_cycles = if rng.gen_bool(0.5) {
                    recovered += 1;
                    Some(rng.gen_range(500..80_000u64))
                } else {
                    None
                };
                records.push(CampaignRecord {
                    workload,
                    shard,
                    detection: DetectionRecord {
                        site: match rng.gen_range(0..3) {
                            0 => FaultSite::MemAddr,
                            1 => FaultSite::MemData,
                            _ => FaultSite::RcpRegister,
                        },
                        injected_cycle,
                        detected_cycle: injected_cycle + delta,
                        latency_ns: delta as f64 * 0.3125,
                        seg: rng.gen_range(1..400u32),
                        recovery_cycles,
                    },
                });
            }
            shards.push(ShardSummary {
                workload,
                shard,
                faults: detections + 1,
                detected: detections,
                masked: 1,
                pending: 0,
                verified_segments: rng.gen_range(50..500u64),
                failed_segments: detections as u64,
                cycles: rng.gen_range(1_000_000..9_000_000u64),
                committed: rng.gen_range(100_000..900_000u64),
                rollbacks: recovered,
                recovered,
                unrecovered: 0,
                storage_bytes_hwm: rng.gen_range(10_000..200_000u64),
            });
        }
    }
    (records, shards)
}

fn drive(sink: &mut dyn RecordSink) {
    let (records, shards) = synthetic_stream();
    let mut by_shard = records.iter().peekable();
    for s in &shards {
        while let Some(r) = by_shard.peek() {
            if (r.workload, r.shard) != (s.workload, s.shard) {
                break;
            }
            sink.on_record(by_shard.next().unwrap()).unwrap();
        }
        sink.on_shard(s).unwrap();
    }
    sink.finish().unwrap();
}

/// Regenerates the golden files after an *intentional* format change:
/// `MEEK_REGEN_GOLDEN=1 cargo test -p meek-campaign golden`.
#[test]
fn regenerate_golden_files_when_asked() {
    if std::env::var_os("MEEK_REGEN_GOLDEN").is_none() {
        return;
    }
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden");
    let mut csv = CsvSink::new(Vec::new());
    drive(&mut csv);
    std::fs::write(format!("{dir}/records.csv"), csv.into_inner()).unwrap();
    let mut jsonl = JsonlSink::new(Vec::new());
    drive(&mut jsonl);
    std::fs::write(format!("{dir}/records.jsonl"), jsonl.into_inner()).unwrap();
}

#[test]
fn csv_sink_matches_golden_bytes() {
    let mut sink = CsvSink::new(Vec::new());
    drive(&mut sink);
    let text = String::from_utf8(sink.into_inner()).unwrap();
    assert_eq!(text, GOLDEN_CSV, "CSV byte format drifted from tests/golden/records.csv");
}

#[test]
fn jsonl_sink_matches_golden_bytes() {
    let mut sink = JsonlSink::new(Vec::new());
    drive(&mut sink);
    let text = String::from_utf8(sink.into_inner()).unwrap();
    assert_eq!(text, GOLDEN_JSONL, "JSONL byte format drifted from tests/golden/records.jsonl");
}

#[test]
fn jsonl_lines_parse_as_flat_json_objects() {
    // Without a JSON dependency, check the invariants tooling relies
    // on: one object per line, no nesting, stable key order.
    const KEYS: [&str; 9] = [
        "workload",
        "shard",
        "site",
        "injected_cycle",
        "detected_cycle",
        "latency_ns",
        "seg",
        "recovered",
        "recovery_cycles",
    ];
    for line in GOLDEN_JSONL.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "not an object: {line}");
        assert_eq!(line.matches('{').count(), 1, "nested object: {line}");
        let mut at = 0;
        for key in KEYS {
            let needle = format!("\"{key}\":");
            let pos = line[at..]
                .find(&needle)
                .unwrap_or_else(|| panic!("key `{key}` missing or out of order: {line}"));
            at += pos + needle.len();
        }
    }
}

#[test]
fn aggregate_sink_tallies_the_synthetic_stream() {
    let mut agg = AggregateSink::new();
    drive(&mut agg);
    let (records, shards) = synthetic_stream();
    let overall = agg.overall();
    assert_eq!(overall.detected, records.len());
    assert_eq!(overall.faults, shards.iter().map(|s| s.faults).sum::<usize>());
    assert_eq!(overall.masked, shards.len() as u64);
    assert_eq!(agg.per_workload().len(), 3);
    assert!(overall.mean_ns() > 0.0);
    assert!(overall.percentile_ns(1.0) >= overall.percentile_ns(0.5));
}
