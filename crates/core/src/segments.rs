//! Segment-to-checker scheduling: the OS-side management of checker
//! threads (paper §IV-B).
//!
//! The LSL is reserved for a single checker thread at scheduling time
//! (`b.hook`), and a checker pinned to an application thread cannot
//! migrate before its re-execution completes. Ownership returns to the
//! OS at the end of each checkpoint, so segments are handed to whichever
//! hooked little core is idle — round-robin when several are.

use meek_littlecore::LittleCore;
use std::collections::HashMap;

/// Tracks which little core verifies which segment.
#[derive(Debug, Clone, Default)]
pub struct SegmentManager {
    assignments: HashMap<u32, usize>,
    /// Segments whose verdict has been delivered, with the verdict
    /// (`true` = passed). A failed segment concludes as soon as the
    /// mismatch is reported — possibly while the big core is still
    /// producing its records — and must never be re-opened, except by a
    /// recovery rollback, which voids verdicts wholesale.
    concluded: HashMap<u32, bool>,
    /// Largest `k` such that segments `1..=k` have all concluded — the
    /// recovery subsystem's readiness gate: a rollback to segment `t`
    /// waits until `concluded_through() >= t - 1`, so every verdict it
    /// leaves standing is final.
    prefix: u32,
    next_rr: usize,
    /// Total segments opened.
    pub opened: u64,
    /// `(segment, checker)` pairs opened since the last
    /// [`SegmentManager::take_opened`] — the system drains this every
    /// cycle to emit typed `SegmentOpened` events.
    opened_log: Vec<(u32, usize)>,
}

impl SegmentManager {
    /// Creates an empty manager.
    pub fn new() -> SegmentManager {
        SegmentManager::default()
    }

    /// The checker core verifying `seg`, if one was assigned.
    pub fn checker_of(&self, seg: u32) -> Option<usize> {
        self.assignments.get(&seg).copied()
    }

    /// Tries to open segment `seg` on an idle hooked core (round-robin
    /// tie-break). Returns the chosen core id, or `None` when every
    /// checker is still busy — the caller must stall, exactly the
    /// "computation-bound" backpressure of §V-D.
    pub fn try_open(&mut self, seg: u32, littles: &mut [LittleCore]) -> Option<usize> {
        if self.concluded.contains_key(&seg) {
            return None; // verdict already delivered; never re-open
        }
        if let Some(&c) = self.assignments.get(&seg) {
            return Some(c); // already open
        }
        let n = littles.len();
        for probe in 0..n {
            let c = (self.next_rr + probe) % n;
            if littles[c].is_idle() {
                littles[c].assign(seg);
                self.assignments.insert(seg, c);
                self.next_rr = (c + 1) % n;
                self.opened += 1;
                self.opened_log.push((seg, c));
                return Some(c);
            }
        }
        None
    }

    /// Releases bookkeeping for a finished segment and records its
    /// verdict.
    pub fn finish(&mut self, seg: u32, pass: bool) {
        self.assignments.remove(&seg);
        self.concluded.insert(seg, pass);
        while self.concluded.contains_key(&(self.prefix + 1)) {
            self.prefix += 1;
        }
    }

    /// Largest `k` such that segments `1..=k` have all delivered
    /// verdicts.
    pub fn concluded_through(&self) -> u32 {
        self.prefix
    }

    /// Whether `seg` has already delivered its verdict.
    pub fn is_concluded(&self, seg: u32) -> bool {
        self.concluded.contains_key(&seg)
    }

    /// Voids every assignment and every verdict for segments at or
    /// after `first_seg` — a recovery rollback re-executes them from
    /// scratch. Returns the number of voided verdicts that had *passed*
    /// (the caller deducts them from its verified-segment count; failed
    /// verdicts stay counted, they are the detections that triggered
    /// recovery). The caller is responsible for resetting the little
    /// cores the voided assignments pointed at.
    pub fn rollback(&mut self, first_seg: u32) -> u64 {
        self.assignments.retain(|&seg, _| seg < first_seg);
        let mut voided_passes = 0;
        self.concluded.retain(|&seg, &mut pass| {
            if seg >= first_seg {
                voided_passes += u64::from(pass);
                false
            } else {
                true
            }
        });
        self.prefix = self.prefix.min(first_seg.saturating_sub(1));
        voided_passes
    }

    /// Number of currently open segments.
    pub fn open_count(&self) -> usize {
        self.assignments.len()
    }

    /// Drains the `(segment, checker)` open log accumulated since the
    /// last call.
    pub fn take_opened(&mut self) -> Vec<(u32, usize)> {
        std::mem::take(&mut self.opened_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meek_littlecore::LittleCoreConfig;

    fn cores(n: usize) -> Vec<LittleCore> {
        (0..n).map(|i| LittleCore::new(i, LittleCoreConfig::optimized(), 17)).collect()
    }

    #[test]
    fn round_robin_over_idle_cores() {
        let mut mgr = SegmentManager::new();
        let mut littles = cores(3);
        assert_eq!(mgr.try_open(1, &mut littles), Some(0));
        assert_eq!(mgr.try_open(2, &mut littles), Some(1));
        assert_eq!(mgr.try_open(3, &mut littles), Some(2));
        // All busy now.
        assert_eq!(mgr.try_open(4, &mut littles), None);
        assert_eq!(mgr.open_count(), 3);
    }

    #[test]
    fn reopen_is_idempotent() {
        let mut mgr = SegmentManager::new();
        let mut littles = cores(2);
        let a = mgr.try_open(1, &mut littles);
        let b = mgr.try_open(1, &mut littles);
        assert_eq!(a, b);
        assert_eq!(mgr.opened, 1);
    }

    #[test]
    fn checker_of_reflects_assignment() {
        let mut mgr = SegmentManager::new();
        let mut littles = cores(2);
        mgr.try_open(1, &mut littles);
        assert_eq!(mgr.checker_of(1), Some(0));
        assert_eq!(mgr.checker_of(2), None);
        mgr.finish(1, true);
        assert_eq!(mgr.checker_of(1), None);
    }

    #[test]
    fn rollback_voids_verdicts_and_counts_passes() {
        let mut mgr = SegmentManager::new();
        let mut littles = cores(3);
        for seg in 1..=3 {
            mgr.try_open(seg, &mut littles);
        }
        mgr.finish(1, true);
        mgr.finish(2, false); // the detection
        mgr.finish(3, true); // out-of-order pass, now suspect
        assert_eq!(mgr.concluded_through(), 3);
        let voided = mgr.rollback(2);
        assert_eq!(voided, 1, "only segment 3's pass is voided");
        assert_eq!(mgr.concluded_through(), 1, "the verdict prefix rewinds with the rollback");
        assert!(mgr.is_concluded(1), "verdicts before the rollback stand");
        assert!(!mgr.is_concluded(2), "the failed segment re-opens");
        assert!(!mgr.is_concluded(3));
        assert_eq!(mgr.open_count(), 0);
    }
}
