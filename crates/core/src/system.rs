//! The assembled MEEK SoC: one big core, N little cores, the forwarding
//! fabric, and the OS-side segment scheduling, simulated across the two
//! clock domains of Fig. 2 (3.2 GHz big core / 1.6 GHz little cores).

use crate::deu::{DeuHook, DeuState, BIG_CORE_NS_PER_CYCLE};
use crate::fault::{FaultInjector, FaultSite, FaultSpec};
use crate::report::{RunReport, StallBreakdown};
use crate::segments::SegmentManager;
use crate::sim::SimEvent;
use meek_bigcore::{BigCore, BigCoreConfig, NullHook};
use meek_fabric::{
    AxiConfig, AxiInterconnect, DestMask, F2Config, Fabric, Packet, PacketKind, PacketSink,
    SinkBank, F2,
};
use meek_isa::{ArchState, SparseMemory};
use meek_littlecore::{CheckerEvent, LittleCore, LittleCoreConfig};
use meek_recover::{RecoveryManager, RecoveryPolicy};
use meek_workloads::{Workload, WorkloadRun};

/// Which interconnect forwards extracted data (the Fig. 9 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FabricKind {
    /// The paper's bespoke fabric (§III-B).
    F2,
    /// The full-featured AXI-Interconnect baseline.
    Axi,
}

impl FabricKind {
    /// Every built-in kind, in stable sweep order.
    pub const ALL: [FabricKind; 2] = [FabricKind::F2, FabricKind::Axi];

    /// Stable lower-case name (CLI values, coverage-feature keys,
    /// corpus persistence, serve wire format).
    pub fn name(self) -> &'static str {
        match self {
            FabricKind::F2 => "f2",
            FabricKind::Axi => "axi",
        }
    }

    /// Inverse of [`FabricKind::name`].
    pub fn from_name(name: &str) -> Option<FabricKind> {
        match name {
            "f2" => Some(FabricKind::F2),
            "axi" => Some(FabricKind::Axi),
            _ => None,
        }
    }
}

/// Configuration of a complete MEEK system.
#[derive(Debug, Clone)]
pub struct MeekConfig {
    /// Number of little (checker) cores hooked to the big core.
    pub n_little: usize,
    /// Little-core microarchitecture.
    pub little: LittleCoreConfig,
    /// Big-core microarchitecture.
    pub big: BigCoreConfig,
    /// Interconnect choice.
    pub fabric: FabricKind,
    /// Run-time records per segment before an RCP is forced ("targeted
    /// LSL full"). Defaults to the LSL run-time capacity.
    pub seg_record_budget: u64,
    /// Instruction timeout per segment (Table II: 5 000).
    pub seg_timeout: u64,
    /// Recovery policy: disabled by default (the paper's detect-only
    /// pipeline); [`RecoveryPolicy::enabled`] turns detections into
    /// checkpoint rollbacks and re-execution.
    pub recovery: RecoveryPolicy,
}

impl Default for MeekConfig {
    fn default() -> Self {
        let little = LittleCoreConfig::optimized();
        MeekConfig {
            n_little: 4,
            little,
            big: BigCoreConfig::sonic_boom(),
            fabric: FabricKind::F2,
            seg_record_budget: little.lsl.runtime_capacity as u64,
            seg_timeout: 5_000,
            recovery: RecoveryPolicy::default(),
        }
    }
}

impl MeekConfig {
    /// The paper's Table II configuration with `n` little cores.
    pub fn with_little_cores(n: usize) -> MeekConfig {
        MeekConfig { n_little: n, ..MeekConfig::default() }
    }

    /// [`MeekConfig::with_little_cores`] plus an enabled recovery
    /// policy: the full detect→rollback→re-execute→verify loop.
    pub fn with_recovery(n: usize, policy: RecoveryPolicy) -> MeekConfig {
        MeekConfig { n_little: n, recovery: policy, ..MeekConfig::default() }
    }
}

/// The checker array viewed as the fabric's sink bank: sink `i` is
/// little core `i`'s Load-Store Log. Handing this to [`Fabric::tick`]
/// avoids materialising a slice of trait objects every cycle.
struct LittleSinks<'a>(&'a mut [LittleCore]);

impl SinkBank for LittleSinks<'_> {
    fn len(&self) -> usize {
        self.0.len()
    }

    fn can_accept(&self, i: usize, kind: PacketKind) -> bool {
        self.0[i].lsl.can_accept(kind)
    }

    fn deliver(&mut self, i: usize, pkt: Packet, now: u64) {
        self.0[i].lsl.deliver(pkt, now);
    }
}

/// The full system under simulation.
pub struct MeekSystem {
    cfg: MeekConfig,
    big: BigCore,
    littles: Vec<LittleCore>,
    fabric: Box<dyn Fabric + Send>,
    deu: DeuState,
    seg_mgr: SegmentManager,
    injector: FaultInjector,
    recover: RecoveryManager,
    run: WorkloadRun,
    image: SparseMemory,
    now: u64,
    app_done_cycle: Option<u64>,
    verified_segments: u64,
    failed_segments: u64,
    /// Structured events accumulated since the last drain (empty unless
    /// capture is enabled — the `sim::Sim` runner enables it and drains
    /// every cycle into its observers).
    events: Vec<SimEvent>,
    record_events: bool,
    /// Detections already surfaced as events (watermark into
    /// `injector.detections`).
    detections_seen: usize,
}

impl MeekSystem {
    /// The built-in interconnect instance for `cfg.fabric`.
    pub(crate) fn default_fabric(cfg: &MeekConfig) -> Box<dyn Fabric + Send> {
        match cfg.fabric {
            FabricKind::F2 => {
                Box::new(F2::new(F2Config { lanes: cfg.big.width as usize, ..F2Config::default() }))
            }
            FabricKind::Axi => Box::new(AxiInterconnect::new(AxiConfig {
                lanes: cfg.big.width as usize,
                ..AxiConfig::default()
            })),
        }
    }

    /// Builds a system around `workload`, capped at `max_insts` dynamic
    /// instructions, on a caller-provided interconnect. Performs the
    /// OS-side setup: `b.hook` of the little cores, `l.mode(CHECK)`,
    /// seeding of checkpoint 0 (the program's initial state) on segment
    /// 1's checker, and `b.check(ENABLE)`. Only reachable through
    /// `sim::SimBuilder`, the sole construction path.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.n_little` is zero.
    pub(crate) fn with_fabric(
        cfg: MeekConfig,
        workload: &Workload,
        max_insts: u64,
        fabric: Box<dyn Fabric + Send>,
    ) -> MeekSystem {
        assert!(cfg.n_little > 0, "MEEK needs at least one little core");
        let mut run = workload.run(max_insts);
        if cfg.recovery.enabled {
            run.enable_undo();
        }
        let initial_cp = run.initial_checkpoint();
        let mut recover = RecoveryManager::new(cfg.recovery);
        // Checkpoint 0 — the program's initial state — is segment 1's
        // start checkpoint; pin it so even a first-segment detection
        // has a rollback target.
        recover.pin_checkpoint(1, 0, initial_cp, run.state().csr_snapshot());
        let mut deu = DeuState::new(
            cfg.big.width as usize,
            fabric.payload_words(),
            cfg.seg_record_budget,
            cfg.seg_timeout,
            initial_cp,
        );
        // The CSR shadow must start from the workload's initial CSR file
        // (not empty): rollback *replaces* the run's CSRs with the pinned
        // snapshot, and a snapshot missing the initial CSRs — the OS-mode
        // gate in particular — would silently flip syscall semantics for
        // everything re-executed after recovery.
        deu.shadow_csrs = run.state().csr_snapshot();
        let chunks = deu.chunks_per_cp();
        // Checkpoints exclude CSRs, so a program whose *initial* state
        // carries CSRs (loaded images: the OS-surface gate) must have
        // them seeded into every checker's replay state directly.
        let initial_csrs = {
            let snap = workload.initial_state().csr_snapshot();
            (!snap.is_empty()).then(|| std::sync::Arc::new(snap))
        };
        let mut littles: Vec<LittleCore> = (0..cfg.n_little)
            .map(|i| {
                let mut lc = LittleCore::new(i, cfg.little, chunks);
                // The shared L2/LLC are warm with the program by the time
                // checker threads are hooked.
                lc.prewarm_code(workload.entry(), 4 * workload.static_len as u64);
                // Replay consumes the workload's pre-decoded record
                // table instead of re-decoding words per instruction.
                lc.install_predecode(workload.predecoded().clone());
                if let Some(csrs) = &initial_csrs {
                    lc.install_initial_csrs(csrs.clone());
                }
                lc
            })
            .collect();
        let mut big = BigCore::new(cfg.big);
        // Steady-state measurement: the loop body is resident after the
        // first iteration on real hardware.
        big.prewarm_icache(workload.entry(), 4 * workload.static_len as u64);
        let mut seg_mgr = SegmentManager::new();
        let first = seg_mgr.try_open(1, &mut littles).expect("a little core is idle at boot");
        littles[first].seed_initial_checkpoint(initial_cp);
        deu.enabled = true;
        MeekSystem {
            cfg,
            big,
            littles,
            fabric,
            deu,
            seg_mgr,
            injector: FaultInjector::new(Vec::new()),
            recover,
            run,
            image: workload.image().clone(),
            now: 0,
            app_done_cycle: None,
            verified_segments: 0,
            failed_segments: 0,
            events: Vec::new(),
            record_events: false,
            detections_seen: 0,
        }
    }

    /// Turns on structured event recording ([`crate::sim::SimEvent`]).
    /// The `sim::Sim` runner enables this and drains
    /// [`MeekSystem::take_events`] every cycle.
    pub(crate) fn enable_event_capture(&mut self) {
        self.record_events = true;
    }

    /// Drains the events recorded since the last call.
    pub(crate) fn take_events(&mut self) -> Vec<SimEvent> {
        std::mem::take(&mut self.events)
    }

    /// Settles end-of-run fault and recovery verdicts once the system
    /// has drained (the tail of `run_to_completion`, shared with the
    /// `sim::Sim` runner).
    pub(crate) fn resolve_drain(&mut self) {
        self.injector.resolve_at_drain();
        self.recover.resolve_at_drain();
    }

    /// Liveness context for the cycle-cap panic message: the drain
    /// predicate's inputs plus a per-little-core snapshot (assignment,
    /// idle flag, LSL occupancies, replay progress) — enough to see
    /// which core or queue wedged. A hung run emits no further events,
    /// so this snapshot is the one diagnostic an attached observer
    /// cannot reconstruct.
    pub(crate) fn liveness_context(&self) -> String {
        let littles: Vec<String> = self
            .littles
            .iter()
            .map(|l| {
                format!(
                    "core{}(assign={:?} idle={} lsl_rt={} lsl_st={} replayed={})",
                    l.id,
                    l.assignment(),
                    l.is_idle(),
                    l.lsl.runtime_len(),
                    l.lsl.status_len(),
                    l.replayed(),
                )
            })
            .collect();
        format!(
            "committed {}, seg {}, verified {}, failed {}, rob {}, drained={} finalized={} \
             transfers_drained={} fabric_empty={} recovery_in_flight={} littles=[{}]",
            self.big.stats().committed,
            self.deu.seg,
            self.verified_segments,
            self.failed_segments,
            self.big.rob_occupancy(),
            self.big.is_drained(),
            self.deu.finalized,
            self.deu.transfers_drained(),
            self.fabric.is_empty(),
            self.recover.in_flight(),
            littles.join(", ")
        )
    }

    /// Installs a fault-injection campaign (replaces any previous one).
    pub fn set_faults(&mut self, faults: Vec<FaultSpec>) {
        self.injector = FaultInjector::new(faults);
    }

    /// Installs a pre-built injector (e.g. a random campaign).
    pub fn set_injector(&mut self, injector: FaultInjector) {
        self.injector = injector;
    }

    /// Current big-core cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Instructions currently occupying the big core's re-order buffer.
    pub fn rob_occupancy(&self) -> usize {
        self.big.rob_occupancy()
    }

    /// Packets queued in the forwarding fabric's DC-buffers right now.
    pub fn fabric_depth(&self) -> usize {
        self.fabric.depth()
    }

    /// The checker-pool load signal behind
    /// [`TickSample`](crate::sim::TickSample): how many little cores
    /// are idle right now, and the total LSL backlog (run-time +
    /// status entries) summed across all of them.
    pub fn littlecore_load(&self) -> (usize, usize) {
        let idle = self.littles.iter().filter(|l| l.is_idle()).count();
        let lsl = self.littles.iter().map(|l| l.lsl.runtime_len() + l.lsl.status_len()).sum();
        (idle, lsl)
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MeekConfig {
        &self.cfg
    }

    /// One big-core cycle of the whole SoC.
    pub fn tick(&mut self) {
        let now = self.now;
        // Little clock domain: every second big cycle (1.6 GHz).
        if now.is_multiple_of(2) {
            let tl = now / 2;
            for lc in &mut self.littles {
                if let Some(CheckerEvent::SegmentVerified { seg, pass, .. }) =
                    lc.tick_check(tl, &self.image)
                {
                    self.seg_mgr.finish(seg, pass);
                    if self.record_events {
                        self.events.push(SimEvent::SegmentClosed { seg, pass, cycle: now });
                    }
                    if pass {
                        self.verified_segments += 1;
                    } else {
                        self.failed_segments += 1;
                    }
                    self.injector.on_segment_verified(seg, pass, now, BIG_CORE_NS_PER_CYCLE);
                    if pass {
                        let out = self.recover.on_verified(seg, now);
                        if let Some(through) = out.release_through {
                            self.run.release_undo_through(through);
                        }
                        if out.episode_closed {
                            if self.record_events {
                                self.events.push(SimEvent::RollbackCompleted { seg, cycle: now });
                            }
                            // Golden escalation (if any) ends with the
                            // episode; annotate the detections this
                            // recovery closed with their latency.
                            self.injector.suppressed = false;
                            let started = out.episode_started.unwrap_or(now);
                            for d in self.injector.detections.iter_mut().filter(|d| {
                                d.recovery_cycles.is_none()
                                    && d.detected_cycle >= started
                                    && d.site != FaultSite::LsqParity
                            }) {
                                d.recovery_cycles = Some(now - d.detected_cycle);
                            }
                        }
                    } else {
                        // FailAction::Scheduled queues a rollback that
                        // executes once older verdicts are final;
                        // Ignored/GiveUp leave detect-only behaviour.
                        let _ = self.recover.on_failed(seg, now);
                    }
                }
            }
        }
        // A scheduled rollback fires once every older segment's verdict
        // is final (they might fail too and deepen the target).
        if let Some(target) = self.recover.pending_target() {
            if self.seg_mgr.concluded_through() >= target.saturating_sub(1) {
                self.execute_rollback(now);
            }
        }
        if self.recover.enabled() {
            self.recover.note_storage(self.run.undo_bytes());
        }
        // DEU background streaming of checkpoint chunks.
        self.deu.pump_transfers(self.fabric.as_mut(), &mut self.injector, now);
        // Fabric moves packets toward the LSLs.
        self.fabric.tick(now, &mut LittleSinks(&mut self.littles));
        // Big clock domain.
        if self.big.is_drained() && self.app_done_cycle.is_none() {
            self.app_done_cycle = Some(now);
        }
        if !self.big.is_drained() {
            let MeekSystem { big, littles, fabric, deu, seg_mgr, injector, recover, run, .. } =
                self;
            let mut oracle = || run.next_retired();
            let mut hook =
                DeuHook { deu, fabric: fabric.as_mut(), littles, seg_mgr, injector, recover };
            big.tick(now, &mut oracle, &mut hook);
        } else {
            self.finalize(now);
        }
        self.injector.advance(self.big.stats().committed);
        self.collect_component_events(now);
        self.now += 1;
    }

    /// Drains the sub-component event logs (segment opens, fired
    /// corruptions, new detections) into the system's event stream,
    /// stamped with this cycle. The logs are drained even with capture
    /// off so they cannot grow unbounded.
    fn collect_component_events(&mut self, now: u64) {
        let opened = self.seg_mgr.take_opened();
        let injected = self.injector.take_injections();
        if !self.record_events {
            self.detections_seen = self.injector.detections.len();
            return;
        }
        for (seg, checker) in opened {
            self.events.push(SimEvent::SegmentOpened { seg, checker, cycle: now });
        }
        for (site, seg, cycle) in injected {
            self.events.push(SimEvent::FaultInjected { site, seg, cycle });
        }
        while self.detections_seen < self.injector.detections.len() {
            let record = self.injector.detections[self.detections_seen];
            self.events.push(SimEvent::FaultDetected { record });
            self.detections_seen += 1;
        }
    }

    /// Executes the scheduled rollback: restores the oracle (registers,
    /// CSRs, memory via the undo-log), squashes the big-core pipeline
    /// and every in-flight packet, voids suspect verdicts, resets the
    /// checker cluster, and re-opens the target segment with its start
    /// checkpoint seeded as the carried SRCP.
    fn execute_rollback(&mut self, now: u64) {
        let committed = self.big.stats().committed;
        let (target, golden) = self.recover.take_rollback(committed);
        if self.record_events {
            self.events.push(SimEvent::RollbackStarted { seg: target.seg, golden, cycle: now });
        }
        self.run.rollback(target.commit_index, &target.cp, target.csrs.clone());
        self.big.rollback(now + self.cfg.recovery.restore_cycles, target.commit_index);
        self.fabric.flush();
        for lc in &mut self.littles {
            lc.reset();
        }
        let voided_passes = self.seg_mgr.rollback(target.seg);
        self.verified_segments -= voided_passes;
        self.deu.rollback(target.seg, target.cp, target.csrs, target.commit_index);
        let checker = self
            .seg_mgr
            .try_open(target.seg, &mut self.littles)
            .expect("every checker is idle right after the squash");
        self.littles[checker].seed_carried_srcp(target.seg.wrapping_sub(1), target.cp, now / 2);
        self.injector.on_rollback(target.seg);
        self.injector.suppressed = golden;
        // The application is no longer "done": it has re-execution
        // ahead of it, and that time is part of the measured run.
        self.app_done_cycle = None;
    }

    /// Emits the final checkpoint once the program has fully committed.
    fn finalize(&mut self, now: u64) {
        if self.deu.finalized || !self.deu.enabled {
            self.deu.finalized = true;
            return;
        }
        let MeekSystem { littles, fabric, deu, seg_mgr, injector, recover, .. } = self;
        let mut hook =
            DeuHook { deu, fabric: fabric.as_mut(), littles, seg_mgr, injector, recover };
        if hook.finalize_segment(now) {
            self.deu.finalized = true;
        }
    }

    /// Whether everything has drained: program committed, checkpoints
    /// forwarded, fabric empty, all checkers idle, and no recovery
    /// (scheduled rollback or open failure episode) outstanding.
    pub fn is_complete(&self) -> bool {
        self.big.is_drained()
            && self.deu.finalized
            && self.deu.transfers_drained()
            && self.fabric.is_empty()
            && self.littles.iter().all(LittleCore::is_idle)
            && !self.recover.in_flight()
    }

    /// Runs until [`MeekSystem::is_complete`] or `max_cycles`.
    ///
    /// # Panics
    ///
    /// Panics if the system fails to complete within `max_cycles` — a
    /// liveness bug, not a measurement artefact.
    pub fn run_to_completion(&mut self, max_cycles: u64) -> RunReport {
        let start = self.now;
        while !self.is_complete() {
            assert!(
                self.now - start < max_cycles,
                "system failed to drain within {max_cycles} cycles ({})",
                self.liveness_context(),
            );
            self.tick();
        }
        // No further segment verdicts can arrive: settle the in-flight
        // fault (masked if every delivered candidate verdict was clean)
        // so the report separates masked from genuinely pending faults.
        self.resolve_drain();
        self.report()
    }

    /// Final architectural state of the application (the functional
    /// oracle's registers, PC and CSRs). After a recovered run this
    /// must equal a fault-free golden execution — the invariant
    /// `meek-difftest --recover` enforces.
    pub fn final_state(&self) -> &ArchState {
        self.run.state()
    }

    /// Final functional memory of the application (same oracle role as
    /// [`MeekSystem::final_state`]).
    pub fn final_memory(&self) -> &SparseMemory {
        self.run.memory()
    }

    /// Faults still queued in the injector (not yet armed).
    pub fn injector_remaining(&self) -> usize {
        self.injector.remaining()
    }

    /// Fault detections recorded so far (cheap; polled per cycle by the
    /// halt-on-first-detection fast path).
    pub fn detection_count(&self) -> usize {
        self.injector.detections.len()
    }

    /// Builds the run report at any point.
    pub fn report(&self) -> RunReport {
        let big = self.big.stats();
        RunReport {
            cycles: self.now,
            app_cycles: self.app_done_cycle.unwrap_or(self.now),
            ns: self.now as f64 * BIG_CORE_NS_PER_CYCLE,
            committed: big.committed,
            big,
            fabric: self.fabric.stats(),
            littles: self.littles.iter().map(|l| l.stats()).collect(),
            verified_segments: self.verified_segments,
            failed_segments: self.failed_segments,
            stalls: StallBreakdown {
                data_collect: big.stall_collect,
                data_forward: big.stall_forward,
                little_core: big.stall_little,
            },
            detections: self.injector.detections.clone(),
            missed_faults: self.injector.masked.len() as u64,
            masked_faults: self.injector.masked.clone(),
            pending_faults: self.injector.unresolved(),
            rcps: self.deu.rcps,
            recovery: *self.recover.report(),
        }
    }
}

impl DeuHook<'_> {
    /// Queues the final checkpoint (no successor segment). Returns
    /// `true` once queued.
    pub(crate) fn finalize_segment(&mut self, _now: u64) -> bool {
        let seg = self.deu.seg;
        if self.seg_mgr.is_concluded(seg) {
            return true; // verdict already delivered mid-segment
        }
        let Some(checker) = self.ensure_checker(seg) else {
            return false;
        };
        let cp = self.deu.shadow_checkpoint();
        let inst_count = self.deu.insts_in_seg();
        self.deu.queue_transfer(seg, inst_count, cp, DestMask::single(checker));
        self.injector.on_boundary(seg, self.deu.committed_total);
        self.deu.rcps += 1;
        true
    }
}

/// Simulation liveness bound for a run of `max_insts` dynamic
/// instructions: generous enough that only a genuine deadlock trips
/// it. Both the experiment harnesses and the campaign engine cap
/// [`MeekSystem::run_to_completion`] with this.
pub fn cycle_cap(max_insts: u64) -> u64 {
    (max_insts * 400).max(20_000_000)
}

/// Runs `workload` on the vanilla big core (checking disabled) and
/// returns the cycle count — the denominator of every slowdown figure.
pub fn run_vanilla(cfg: &BigCoreConfig, workload: &Workload, max_insts: u64) -> u64 {
    let mut big = BigCore::new(*cfg);
    big.prewarm_icache(workload.entry(), 4 * workload.static_len as u64);
    let mut run = workload.run(max_insts);
    let mut hook = NullHook;
    let mut now = 0u64;
    while !big.is_drained() {
        let mut oracle = || run.next_retired();
        big.tick(now, &mut oracle, &mut hook);
        now += 1;
    }
    now
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultSite, FaultSpec};
    use crate::sim::Sim;
    use meek_workloads::parsec3;

    fn small_workload() -> Workload {
        Workload::build(&parsec3()[0], 11)
    }

    #[test]
    fn meek_system_is_send() {
        // The campaign engine builds and runs whole systems on worker
        // threads; a non-Send field sneaking into the SoC would break
        // that at a distance, so pin it here.
        fn assert_send<T: Send>() {}
        assert_send::<MeekSystem>();
        assert_send::<MeekConfig>();
        assert_send::<crate::report::RunReport>();
    }

    #[test]
    fn clean_run_verifies_every_segment() {
        let wl = small_workload();
        let report = Sim::builder(&wl, 15_000).build().expect("valid").run().report;
        assert_eq!(report.failed_segments, 0);
        assert!(report.verified_segments > 0);
        assert_eq!(report.committed, 15_000);
        assert_eq!(report.rcps, report.verified_segments);
    }

    #[test]
    fn slowdown_is_small_with_four_cores() {
        let wl = small_workload();
        let cfg = MeekConfig::default();
        let vanilla = run_vanilla(&cfg.big, &wl, 15_000);
        let report = Sim::builder(&wl, 15_000).build().expect("valid").run().report;
        let slowdown = report.slowdown_vs(vanilla);
        assert!(slowdown < 1.6, "4-core slowdown {slowdown:.3} unreasonably high");
        assert!(slowdown >= 1.0 - 1e-9);
    }

    #[test]
    fn injected_fault_is_detected() {
        let wl = small_workload();
        let report = Sim::builder(&wl, 12_000)
            .faults(vec![FaultSpec { arm_at_commit: 4_000, site: FaultSite::MemAddr, bit: 9 }])
            .build()
            .expect("valid")
            .run()
            .report;
        assert_eq!(report.detections.len(), 1, "missed: {}", report.missed_faults);
        assert_eq!(report.missed_faults, 0);
        assert_eq!(report.failed_segments, 1);
        let d = &report.detections[0];
        assert!(d.latency_ns > 0.0);
        assert!(d.detected_cycle > d.injected_cycle);
    }

    #[test]
    fn single_little_core_still_completes() {
        let wl = small_workload();
        let report = Sim::builder(&wl, 6_000).little_cores(1).build().expect("valid").run().report;
        assert_eq!(report.failed_segments, 0);
        assert!(report.verified_segments > 0);
    }

    #[test]
    fn more_little_cores_never_slower() {
        let wl = small_workload();
        let run_n = |n: usize| {
            Sim::builder(&wl, 10_000)
                .little_cores(n)
                .cycle_headroom(2)
                .build()
                .expect("valid")
                .run()
                .report
                .cycles
        };
        let two = run_n(2);
        let four = run_n(4);
        assert!(four <= two + two / 10, "4 cores ({four}) should not be slower than 2 ({two})");
    }

    #[test]
    fn detected_fault_recovers_to_clean_completion() {
        let wl = small_workload();
        let fault = FaultSpec { arm_at_commit: 4_000, site: FaultSite::MemAddr, bit: 9 };
        let detect_only =
            Sim::builder(&wl, 12_000).faults(vec![fault]).build().expect("valid").run().report;
        assert!(detect_only.recovery.rollbacks == 0 && detect_only.detections.len() == 1);
        assert_eq!(detect_only.detections[0].recovery_cycles, None);

        let outcome = Sim::builder(&wl, 12_000)
            .recovery(RecoveryPolicy::enabled())
            .faults(vec![fault])
            .build()
            .expect("valid")
            .run();
        let report = &outcome.report;
        assert_eq!(report.detections.len(), 1);
        let r = &report.recovery;
        assert_eq!(r.rollbacks, 1, "one detection, one rollback: {r:?}");
        assert_eq!(r.recovered, 1);
        assert_eq!(r.unrecovered, 0);
        assert!(r.reexecuted_insts > 0);
        assert!(r.recovery_cycles_total > 0);
        assert!(r.storage_bytes_hwm > 0);
        let cycles = report.detections[0].recovery_cycles;
        assert!(cycles.is_some_and(|c| c > 0), "detection must carry its recovery latency");
        // The run still commits everything and the re-executed segment
        // verifies clean: recovery restored, re-ran, and re-checked.
        assert_eq!(report.committed, 12_000);
        assert_eq!(report.failed_segments, 1);
        // Final state equals a fault-free run of the same workload.
        let clean = Sim::builder(&wl, 12_000).build().expect("valid").run();
        assert_eq!(outcome.final_state(), clean.final_state(), "recovery must be state-preserving");
    }

    #[test]
    fn recovery_survives_a_fault_barrage() {
        let wl = small_workload();
        let faults = (0..6)
            .map(|i| FaultSpec {
                arm_at_commit: 1_500 + i * 2_000,
                site: match i % 3 {
                    0 => FaultSite::MemAddr,
                    1 => FaultSite::MemData,
                    _ => FaultSite::RcpRegister,
                },
                bit: (i as u32 * 11 + 3) % 48,
            })
            .collect();
        let outcome = Sim::builder(&wl, 15_000)
            .recovery(RecoveryPolicy::enabled())
            .faults(faults)
            .build()
            .expect("valid")
            .run();
        let report = &outcome.report;
        let r = &report.recovery;
        assert_eq!(r.unrecovered, 0, "every detection must recover: {r:?}");
        assert_eq!(r.recovered, report.detections.len() as u64 - lsq(report));
        assert_eq!(report.committed, 15_000);
        let clean = Sim::builder(&wl, 15_000).build().expect("valid").run();
        assert_eq!(outcome.final_state(), clean.final_state());
    }

    fn lsq(report: &RunReport) -> u64 {
        report.detections.iter().filter(|d| d.site == FaultSite::LsqParity).count() as u64
    }

    #[test]
    fn lsq_parity_fault_detected_without_failing_a_segment() {
        let wl = small_workload();
        let report = Sim::builder(&wl, 12_000)
            .faults(vec![FaultSpec { arm_at_commit: 3_000, site: FaultSite::LsqParity, bit: 21 }])
            .build()
            .expect("valid")
            .run()
            .report;
        assert_eq!(report.detections.len(), 1);
        assert_eq!(report.detections[0].site, FaultSite::LsqParity);
        assert_eq!(report.failed_segments, 0, "parity catches it before any checker sees it");
        assert!(report.big.cycles > 0);
        assert_eq!(report.missed_faults, 0);
    }

    #[test]
    fn cache_data_fault_is_detected_by_replay() {
        let wl = small_workload();
        let report = Sim::builder(&wl, 12_000)
            .faults(vec![FaultSpec { arm_at_commit: 3_000, site: FaultSite::CacheData, bit: 5 }])
            .build()
            .expect("valid")
            .run()
            .report;
        assert_eq!(
            report.detections.len() + report.missed_faults as usize,
            1,
            "a load-data flip is either detected or provably dead: {report:?}"
        );
    }

    #[test]
    fn axi_fabric_completes() {
        let wl = small_workload();
        let report = Sim::builder(&wl, 8_000)
            .fabric(FabricKind::Axi)
            .cycle_headroom(2)
            .build()
            .expect("valid")
            .run()
            .report;
        assert_eq!(report.failed_segments, 0);
    }

    #[test]
    fn fabric_kind_names_roundtrip() {
        for kind in FabricKind::ALL {
            assert_eq!(FabricKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(FabricKind::from_name("bogus"), None);
    }
}
