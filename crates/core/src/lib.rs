//! **MEEK** — *Make Each Error Count*: heterogeneous parallel error
//! detection for out-of-order superscalar processors.
//!
//! This crate is the paper's primary contribution: it assembles the big
//! core (`meek-bigcore`), the little checker cores (`meek-littlecore`),
//! and the forwarding fabric (`meek-fabric`) into a full error-detecting
//! SoC, and adds everything that lives *between* those components in the
//! paper:
//!
//! * the **DEU** ([`deu`]) — the commit-stage Data Extraction Unit,
//!   including the commit-order shadow register state it reads in place
//!   of the PRFs, run-time/status packet generation, RCP triggering
//!   (LSL-full / 5000-instruction timeout / kernel trap), and the LSQ
//!   parity double-check of footnote 2;
//! * **segmentation** ([`segments`]) — checker-thread scheduling of
//!   segments onto little cores (the OS's `b.hook`/`l.mode` management);
//! * the **OS model** ([`os`]) — Algorithms 1 and 2 (context switches and
//!   the checker-thread programming model) and the Fig. 5 page-fault
//!   deadlock with its one-instruction-behind fix;
//! * **fault injection** ([`fault`]) — bit flips in forwarded data, with
//!   detection-latency measurement (Fig. 7);
//! * the **system** ([`system`]) — the two-clock-domain simulation loop
//!   (3.2 GHz big domain, 1.6 GHz little domain) and run reports with the
//!   stall decomposition of Fig. 9.
//!
//! # Quickstart
//!
//! Every simulation is constructed through the typed, validating
//! [`sim::SimBuilder`] and run with [`sim::Sim::run`], which yields a
//! structured [`sim::RunOutcome`] (report + final state + per-segment
//! timeline). Instrumentation attaches as [`sim::Observer`]s with
//! typed hooks instead of polled debug strings:
//!
//! ```
//! use meek_core::sim::{EventCounter, Sim};
//! use meek_workloads::{parsec3, Workload};
//!
//! let profile = &parsec3()[0]; // blackscholes
//! let wl = Workload::build(profile, 1);
//! let counter = EventCounter::new();
//! let outcome = Sim::builder(&wl, 20_000)
//!     .little_cores(4)
//!     .observe(counter.clone())
//!     .build()
//!     .expect("a valid configuration")
//!     .run();
//! assert_eq!(outcome.report.failed_segments, 0, "clean run must verify");
//! assert!(outcome.report.verified_segments > 0);
//! // The timeline and event counts expose what the run actually did.
//! assert_eq!(outcome.timeline.len() as u64, outcome.report.verified_segments);
//! assert_eq!(counter.counts().passes, outcome.report.verified_segments);
//! ```
//!
//! Faults, recovery policies and fabric choices compose on the same
//! builder — see [`sim`] for the full scenario-matrix surface.

pub mod deu;
pub mod fault;
pub mod os;
pub mod report;
pub mod segments;
pub mod sim;
pub mod system;

pub use deu::{DeuHook, DeuState, BIG_CORE_NS_PER_CYCLE};
pub use fault::{
    random_fault_specs, rcp_register_index, CorruptedField, DetectionRecord, FaultSite, FaultSpec,
    MaskRecord,
};
pub use meek_recover::{RecoveryPolicy, RecoveryReport};
pub use report::{RunReport, StallBreakdown};
pub use segments::SegmentManager;
pub use sim::{
    validate_config, BuildError, EventCounter, EventCounts, JsonlEventSink, NoObserver, Observer,
    ObserverSet, RunOutcome, SampleRow, SamplingObserver, SegmentSpan, SharedBuf, Sim, SimBuilder,
    SimEvent, TickSample, TraceLog,
};
pub use system::{cycle_cap, run_vanilla, FabricKind, MeekConfig, MeekSystem};
