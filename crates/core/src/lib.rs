//! **MEEK** — *Make Each Error Count*: heterogeneous parallel error
//! detection for out-of-order superscalar processors.
//!
//! This crate is the paper's primary contribution: it assembles the big
//! core (`meek-bigcore`), the little checker cores (`meek-littlecore`),
//! and the forwarding fabric (`meek-fabric`) into a full error-detecting
//! SoC, and adds everything that lives *between* those components in the
//! paper:
//!
//! * the **DEU** ([`deu`]) — the commit-stage Data Extraction Unit,
//!   including the commit-order shadow register state it reads in place
//!   of the PRFs, run-time/status packet generation, RCP triggering
//!   (LSL-full / 5000-instruction timeout / kernel trap), and the LSQ
//!   parity double-check of footnote 2;
//! * **segmentation** ([`segments`]) — checker-thread scheduling of
//!   segments onto little cores (the OS's `b.hook`/`l.mode` management);
//! * the **OS model** ([`os`]) — Algorithms 1 and 2 (context switches and
//!   the checker-thread programming model) and the Fig. 5 page-fault
//!   deadlock with its one-instruction-behind fix;
//! * **fault injection** ([`fault`]) — bit flips in forwarded data, with
//!   detection-latency measurement (Fig. 7);
//! * the **system** ([`system`]) — the two-clock-domain simulation loop
//!   (3.2 GHz big domain, 1.6 GHz little domain) and run reports with the
//!   stall decomposition of Fig. 9.
//!
//! # Quickstart
//!
//! ```
//! use meek_core::{MeekConfig, MeekSystem};
//! use meek_workloads::{parsec3, Workload};
//!
//! let profile = &parsec3()[0]; // blackscholes
//! let wl = Workload::build(profile, 1);
//! let mut sys = MeekSystem::new(MeekConfig::default(), &wl, 20_000);
//! let report = sys.run_to_completion(10_000_000);
//! assert_eq!(report.failed_segments, 0, "clean run must verify");
//! assert!(report.verified_segments > 0);
//! ```

pub mod deu;
pub mod fault;
pub mod os;
pub mod report;
pub mod segments;
pub mod system;

pub use deu::{DeuHook, DeuState, BIG_CORE_NS_PER_CYCLE};
pub use fault::{
    random_fault_specs, rcp_register_index, CorruptedField, DetectionRecord, FaultSite, FaultSpec,
    MaskRecord,
};
pub use meek_recover::{RecoveryPolicy, RecoveryReport};
pub use report::{RunReport, StallBreakdown};
pub use segments::SegmentManager;
pub use system::{cycle_cap, run_vanilla, FabricKind, MeekConfig, MeekSystem};
