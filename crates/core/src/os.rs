//! The OS kernel model: context switches (Algorithms 1 and 2), the
//! checker-thread programming model, and the Fig. 5 page-fault deadlock
//! with its one-instruction-behind fix.
//!
//! The timing simulator embeds the *effects* of these protocols (LSL
//! reservation, segment assignment, replay gating); this module models
//! the protocols themselves so they can be verified and demonstrated —
//! the few-lines-of-kernel-code claim of the paper is about exactly
//! these call sequences.

use std::fmt;

/// One call made by the modified kernel scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OsCall {
    /// `MEEK.b.check(DISABLE)` — Algorithm 1 line 3.
    BCheckDisable,
    /// `Kernel.Intr(DISABLE)`.
    IntrDisable,
    /// `Kernel.Context.save(current)`.
    ContextSave,
    /// `MEEK.b.hook(core, checker)` — Algorithm 1 line 12.
    BHook {
        /// Big-core index.
        big: usize,
        /// Little-core index reserved for the checker thread.
        little: usize,
    },
    /// `Kernel.Context.init(next)` for new releases.
    ContextInit,
    /// `Kernel.Context.restore(next)` otherwise.
    ContextRestore,
    /// `Kernel.Intr(ENABLE)`.
    IntrEnable,
    /// `MEEK.b.check(ENABLE)` — Algorithm 1 line 20.
    BCheckEnable,
    /// `Kernel.Context.jalr(pc)`.
    Jalr,
    /// `MEEK.l.mode(MODE_APPLICATION)` — Algorithm 2 line 3.
    LModeApplication,
    /// `MEEK.l.mode(MODE_CHECK)` — Algorithm 2 line 7.
    LModeCheck,
}

/// Emits the big core's context-switch call sequence (Algorithm 1).
///
/// When `new_release` is true, the scheduler hooks every little core in
/// `checker_cores` to `big_core` before initialising the new context.
pub fn big_core_context_switch(
    big_core: usize,
    new_release: bool,
    checker_cores: &[usize],
) -> Vec<OsCall> {
    let mut calls = vec![OsCall::BCheckDisable, OsCall::IntrDisable, OsCall::ContextSave];
    if new_release {
        for &c in checker_cores {
            calls.push(OsCall::BHook { big: big_core, little: c });
        }
        calls.push(OsCall::ContextInit);
    } else {
        calls.push(OsCall::ContextRestore);
    }
    calls.push(OsCall::IntrEnable);
    calls.push(OsCall::BCheckEnable);
    calls.push(OsCall::Jalr);
    calls
}

/// Emits the little core's context-switch call sequence (Algorithm 2,
/// lines 2–10): mode returns to APPLICATION across the switch and is set
/// to CHECK only when the incoming task is a checker thread.
pub fn little_core_context_switch(next_is_checker: bool) -> Vec<OsCall> {
    let mut calls = vec![OsCall::LModeApplication, OsCall::ContextSave, OsCall::ContextRestore];
    if next_is_checker {
        calls.push(OsCall::LModeCheck);
    }
    calls.push(OsCall::Jalr);
    calls
}

/// Outcome of the Fig. 5 page-fault scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageFaultOutcome {
    /// The little core overtook the main thread, faulted on an
    /// instruction page, and blocked on the memory-status lock held by a
    /// big core that is itself waiting for the checker: deadlock.
    Deadlock,
    /// The big core reached the fault first, handled it through its own
    /// page-fault handler, and the checker replayed the kernel's work:
    /// no cross-core lock wait.
    ResolvedByBigCore,
}

impl fmt::Display for PageFaultOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageFaultOutcome::Deadlock => {
                write!(f, "deadlock (checker blocked on big core's lock)")
            }
            PageFaultOutcome::ResolvedByBigCore => {
                write!(f, "resolved (page fault handled by the big core first)")
            }
        }
    }
}

/// A discrete model of the Fig. 5 kernel-verification deadlock.
///
/// Events: the main thread executes instructions `0..n`; an instruction
/// page is invalid from `faulting_inst` onward. The main thread's LSL is
/// full, so the big core is *blocked waiting on the checker* when the
/// scenario begins. If the checker may run ahead of the main thread's
/// commit point (`one_behind_fix == false`), it reaches the invalid page
/// first, raises the fault on the little core, and requests the
/// memory-status lock — which the blocked big core holds: deadlock
/// (Fig. 5a). With the fix, the checker is kept at least one
/// instruction behind, so the *big core* faults first and handles it
/// (Fig. 5b); synchronising on I/O additionally guarantees no page used
/// by an unfinished checker is written out.
#[derive(Debug, Clone, Copy)]
pub struct PageFaultScenario {
    /// Instruction index at which the page becomes invalid.
    pub faulting_inst: u64,
    /// Commit progress of the main thread (may lag the checker when the
    /// fix is off).
    pub main_progress: u64,
    /// Whether the one-instruction-behind fix is applied.
    pub one_behind_fix: bool,
    /// Whether I/O is synchronised with checker completion (prevents
    /// page-out of in-use pages).
    pub io_sync: bool,
}

impl PageFaultScenario {
    /// Runs the scenario to its outcome.
    pub fn resolve(&self) -> PageFaultOutcome {
        // Checker position: with the fix it can never pass
        // main_progress - 1; without it, it may run to the fault point.
        let checker_limit =
            if self.one_behind_fix { self.main_progress.saturating_sub(1) } else { u64::MAX };
        // Without I/O synchronisation a page may additionally be written
        // out *before* the checker reaches it, which manifests the same
        // way: the checker faults on an instruction the main thread has
        // already retired.
        let page_out_race = !self.io_sync && !self.one_behind_fix;
        let checker_faults_first = checker_limit >= self.faulting_inst
            && (self.main_progress < self.faulting_inst || page_out_race);
        if checker_faults_first {
            PageFaultOutcome::Deadlock
        } else {
            PageFaultOutcome::ResolvedByBigCore
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm1_ordering() {
        let calls = big_core_context_switch(0, true, &[1, 2, 3, 4]);
        // b.check(DISABLE) first, b.check(ENABLE) after interrupts are
        // re-enabled, jalr last.
        assert_eq!(calls.first(), Some(&OsCall::BCheckDisable));
        assert_eq!(calls.last(), Some(&OsCall::Jalr));
        let enable_pos = calls.iter().position(|c| *c == OsCall::BCheckEnable).unwrap();
        let intr_pos = calls.iter().position(|c| *c == OsCall::IntrEnable).unwrap();
        assert!(intr_pos < enable_pos);
        // Four hooks for four checker cores.
        let hooks = calls.iter().filter(|c| matches!(c, OsCall::BHook { .. })).count();
        assert_eq!(hooks, 4);
        assert!(calls.contains(&OsCall::ContextInit));
        assert!(!calls.contains(&OsCall::ContextRestore));
    }

    #[test]
    fn algorithm1_restore_path_has_no_hooks() {
        let calls = big_core_context_switch(0, false, &[1, 2]);
        assert!(calls.iter().all(|c| !matches!(c, OsCall::BHook { .. })));
        assert!(calls.contains(&OsCall::ContextRestore));
    }

    #[test]
    fn algorithm2_mode_switching() {
        let checker = little_core_context_switch(true);
        assert_eq!(checker.first(), Some(&OsCall::LModeApplication));
        assert!(checker.contains(&OsCall::LModeCheck));
        let app = little_core_context_switch(false);
        assert!(!app.contains(&OsCall::LModeCheck));
    }

    #[test]
    fn fig5a_deadlock_without_fix() {
        let scenario = PageFaultScenario {
            faulting_inst: 100,
            main_progress: 90,
            one_behind_fix: false,
            io_sync: false,
        };
        assert_eq!(scenario.resolve(), PageFaultOutcome::Deadlock);
    }

    #[test]
    fn fig5b_fix_resolves() {
        let scenario = PageFaultScenario {
            faulting_inst: 100,
            main_progress: 90,
            one_behind_fix: true,
            io_sync: true,
        };
        assert_eq!(scenario.resolve(), PageFaultOutcome::ResolvedByBigCore);
    }

    #[test]
    fn fix_holds_even_at_fault_boundary() {
        // Main thread exactly at the faulting instruction: the big core
        // raises and handles the fault; the checker (one behind) cannot.
        let scenario = PageFaultScenario {
            faulting_inst: 100,
            main_progress: 100,
            one_behind_fix: true,
            io_sync: true,
        };
        assert_eq!(scenario.resolve(), PageFaultOutcome::ResolvedByBigCore);
    }

    #[test]
    fn io_sync_alone_is_not_enough() {
        let scenario = PageFaultScenario {
            faulting_inst: 100,
            main_progress: 50,
            one_behind_fix: false,
            io_sync: true,
        };
        assert_eq!(scenario.resolve(), PageFaultOutcome::Deadlock);
    }
}
