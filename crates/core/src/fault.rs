//! Fault injection into forwarded data (paper §V-B).
//!
//! Faults are injected "in the forwarded data from the F2 connected to
//! the big core, e.g., data and address of memory operations and
//! architectural register data, simulating the hardware faults without
//! disrupting the big core's normal execution". Exactly that: the
//! injector flips one bit of a packet as the DEU hands it to the fabric;
//! the big core's architectural execution is untouched, and the checker
//! must notice the divergence.

use meek_fabric::{Packet, Payload};
use rand::rngs::SmallRng;
use rand::Rng;

/// Where to flip a bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Address of a forwarded memory record.
    MemAddr,
    /// Data of a forwarded memory record.
    MemData,
    /// A register value inside a forwarded checkpoint.
    RcpRegister,
}

/// A pending fault: armed at a commit index, fires on the next matching
/// packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Commit index (instructions retired) at which the fault arms.
    pub arm_at_commit: u64,
    /// Which field to corrupt.
    pub site: FaultSite,
    /// Bit to flip (masked to the field width).
    pub bit: u32,
}

/// Outcome of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionRecord {
    /// Where the bit was flipped.
    pub site: FaultSite,
    /// Big-core cycle of injection.
    pub injected_cycle: u64,
    /// Big-core cycle of detection (checker mismatch report).
    pub detected_cycle: u64,
    /// Detection latency in nanoseconds.
    pub latency_ns: f64,
    /// Segment in which the fault was detected.
    pub seg: u32,
}

/// The paper's random fault distribution (§V-B): sites drawn uniformly
/// from {memory address, memory data, checkpoint register}, a random
/// bit, arm points spread evenly over `arm_span` committed
/// instructions. The single source of the distribution — the serial
/// [`FaultInjector::random_campaign`] and the sharded campaign engine
/// both sample from here, so the figures and campaign records measure
/// the same thing.
pub fn random_fault_specs(n: usize, arm_span: u64, rng: &mut SmallRng) -> Vec<FaultSpec> {
    let mut faults = Vec::with_capacity(n);
    for i in 0..n {
        let site = match rng.gen_range(0..3) {
            0 => FaultSite::MemAddr,
            1 => FaultSite::MemData,
            _ => FaultSite::RcpRegister,
        };
        let arm_at = (i as u64 + 1) * arm_span / (n as u64 + 1);
        faults.push(FaultSpec { arm_at_commit: arm_at, site, bit: rng.gen_range(0..64) });
    }
    faults
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    spec: FaultSpec,
    injected: u64,
    fseg: u32,
    fseg_passed: bool,
    next_passed: bool,
}

/// Injector state machine: Idle -> Armed -> InFlight -> (recorded).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    queue: Vec<FaultSpec>,
    armed: Option<FaultSpec>,
    in_flight: Option<InFlight>,
    /// Completed detections.
    pub detections: Vec<DetectionRecord>,
    /// Faults injected whose segment verified *clean* (undetected) —
    /// must stay zero; any entry is a soundness bug.
    pub missed: u64,
}

impl FaultInjector {
    /// Creates an injector with a queue of faults (sorted by arm time).
    pub fn new(mut faults: Vec<FaultSpec>) -> FaultInjector {
        faults.sort_by_key(|f| f.arm_at_commit);
        faults.reverse(); // pop() yields earliest first
        FaultInjector {
            queue: faults,
            armed: None,
            in_flight: None,
            detections: Vec::new(),
            missed: 0,
        }
    }

    /// Generates `n` random faults spread uniformly over `commit_span`
    /// instructions, mirroring the paper's 5 000–10 000 random faults.
    pub fn random_campaign(n: usize, commit_span: u64, rng: &mut SmallRng) -> FaultInjector {
        FaultInjector::new(random_fault_specs(n, commit_span, rng))
    }

    /// Whether a fault is currently in flight (awaiting detection).
    pub fn busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Re-arms the in-flight fault: used when the corrupted packet was
    /// rejected by a full DC-Buffer and dropped (the retried push builds
    /// a fresh packet, so the corruption must fire again).
    pub fn revert(&mut self) {
        if let Some(fl) = self.in_flight.take() {
            self.armed = Some(fl.spec);
        }
    }

    /// Faults remaining in the queue (not yet armed).
    pub fn remaining(&self) -> usize {
        self.queue.len()
    }

    /// Faults with no verdict yet: still queued, armed but not fired,
    /// or in flight awaiting a segment verdict. At end of run these are
    /// the faults the campaign must report as *pending* — typically a
    /// tail fault whose corrupted checkpoint was the program's last, so
    /// no successor segment ever delivered a verdict.
    pub fn unresolved(&self) -> usize {
        self.queue.len() + self.armed.is_some() as usize + self.in_flight.is_some() as usize
    }

    /// Debug string of the injector state.
    pub fn debug(&self) -> String {
        format!(
            "armed={:?} in_flight={:?} queued={} det={} missed={}",
            self.armed,
            self.in_flight,
            self.queue.len(),
            self.detections.len(),
            self.missed
        )
    }

    /// Arms the next fault once the commit counter passes its trigger.
    /// One fault is outstanding at a time so latencies are unambiguous.
    pub fn advance(&mut self, committed: u64) {
        if self.armed.is_none() && self.in_flight.is_none() {
            if let Some(&f) = self.queue.last() {
                if committed >= f.arm_at_commit {
                    self.queue.pop();
                    self.armed = Some(f);
                }
            }
        }
    }

    /// Offers a packet to the injector just before it enters the fabric;
    /// if a matching fault is armed, one bit is flipped in place.
    pub fn maybe_corrupt(&mut self, pkt: &mut Packet, now: u64, seg: u32) {
        let Some(f) = self.armed else { return };
        let hit = match (&mut pkt.payload, f.site) {
            (Payload::Mem { addr, .. }, FaultSite::MemAddr) => {
                *addr ^= 1 << (f.bit % 64);
                true
            }
            (Payload::Mem { data, size, .. }, FaultSite::MemData) => {
                // Flip within the access width so the corruption is live.
                let width_bits = (*size as u32) * 8;
                *data ^= 1 << (f.bit % width_bits);
                true
            }
            (Payload::RcpEnd { cp, .. }, FaultSite::RcpRegister) => {
                // Flip a bit of a (pseudo-randomly chosen) live register.
                let idx = (f.bit as usize * 7 + 3) % 31 + 1; // x1..x31
                cp.x[idx] ^= 1 << (f.bit % 64);
                true
            }
            _ => false,
        };
        if hit {
            self.armed = None;
            self.in_flight = Some(InFlight {
                spec: f,
                injected: now,
                fseg: seg,
                fseg_passed: false,
                next_passed: false,
            });
        }
    }

    /// Reports a segment verification result to the injector.
    ///
    /// A memory-record fault must be detected while its own segment
    /// replays; a checkpoint fault is the ERCP of segment `fseg` *and*
    /// the SRCP of `fseg + 1`, so detection may land in either (segments
    /// can complete out of order across cores). A fault whose candidate
    /// segments all verified clean is counted in
    /// [`FaultInjector::missed`].
    pub fn on_segment_verified(&mut self, seg: u32, pass: bool, now: u64, ns_per_cycle: f64) {
        let Some(fl) = &mut self.in_flight else { return };
        if seg < fl.fseg {
            return;
        }
        if !pass {
            let latency_ns = (now - fl.injected) as f64 * ns_per_cycle;
            self.detections.push(DetectionRecord {
                site: fl.spec.site,
                injected_cycle: fl.injected,
                detected_cycle: now,
                latency_ns,
                seg,
            });
            self.in_flight = None;
            return;
        }
        match fl.spec.site {
            FaultSite::MemAddr | FaultSite::MemData => {
                if seg == fl.fseg {
                    self.missed += 1;
                    self.in_flight = None;
                }
            }
            FaultSite::RcpRegister => {
                if seg == fl.fseg {
                    fl.fseg_passed = true;
                } else if seg == fl.fseg + 1 {
                    fl.next_passed = true;
                }
                // `fseg`'s own verdict can predate the injection (its
                // checker may have failed on an earlier fault before the
                // corrupted ERCP even arrived). Once verdicts are well
                // past the concurrency window, stop waiting for it.
                let fseg_unreachable = seg > fl.fseg + 4;
                if fl.next_passed && (fl.fseg_passed || fseg_unreachable) {
                    self.missed += 1;
                    self.in_flight = None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meek_fabric::DestMask;
    use rand::SeedableRng;

    fn mem_pkt() -> Packet {
        Packet {
            seq: 0,
            dest: DestMask::single(0),
            payload: Payload::Mem { seg: 1, addr: 0x1000, size: 8, data: 0xAB, is_store: true },
            created_at: 0,
        }
    }

    #[test]
    fn corrupts_exactly_one_outstanding_fault() {
        let mut inj = FaultInjector::new(vec![FaultSpec {
            arm_at_commit: 10,
            site: FaultSite::MemData,
            bit: 3,
        }]);
        inj.advance(5);
        let mut p = mem_pkt();
        inj.maybe_corrupt(&mut p, 100, 1);
        assert_eq!(p, mem_pkt(), "not armed yet");
        inj.advance(10);
        inj.maybe_corrupt(&mut p, 100, 1);
        match p.payload {
            Payload::Mem { data, .. } => assert_eq!(data, 0xAB ^ 8),
            _ => unreachable!(),
        }
        assert!(inj.busy());
        // A second packet is NOT corrupted.
        let mut q = mem_pkt();
        inj.maybe_corrupt(&mut q, 101, 1);
        assert_eq!(q, mem_pkt());
    }

    #[test]
    fn latency_recorded_on_detection() {
        let mut inj = FaultInjector::new(vec![FaultSpec {
            arm_at_commit: 0,
            site: FaultSite::MemAddr,
            bit: 5,
        }]);
        inj.advance(0);
        let mut p = mem_pkt();
        inj.maybe_corrupt(&mut p, 1000, 4);
        inj.on_segment_verified(4, false, 4200, 0.3125);
        assert_eq!(inj.detections.len(), 1);
        let d = &inj.detections[0];
        assert_eq!(d.injected_cycle, 1000);
        assert_eq!(d.detected_cycle, 4200);
        assert!((d.latency_ns - 3200.0 * 0.3125).abs() < 1e-9);
        assert!(!inj.busy());
        assert_eq!(inj.missed, 0);
    }

    #[test]
    fn rcp_fault_may_detect_in_next_segment() {
        let mut inj = FaultInjector::new(vec![FaultSpec {
            arm_at_commit: 0,
            site: FaultSite::RcpRegister,
            bit: 9,
        }]);
        inj.advance(0);
        let mut p = Packet {
            seq: 0,
            dest: DestMask::single(0),
            payload: Payload::RcpEnd {
                seg: 3,
                inst_count: 100,
                cp: Box::new(meek_isa::state::RegCheckpoint::zeroed(0)),
            },
            created_at: 0,
        };
        inj.maybe_corrupt(&mut p, 500, 3);
        assert!(inj.busy());
        // Segment 3 verifies clean (fault was in its ERCP *as forwarded*,
        // but detection can land in segment 4 whose SRCP it corrupts).
        inj.on_segment_verified(3, true, 600, 0.3125);
        assert!(inj.busy(), "still awaiting detection in segment 4");
        inj.on_segment_verified(4, false, 900, 0.3125);
        assert_eq!(inj.detections.len(), 1);
    }

    #[test]
    fn random_campaign_is_ordered_and_sized() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut inj = FaultInjector::random_campaign(100, 1_000_000, &mut rng);
        let mut last = 0;
        let mut n = 0;
        while let Some(f) = inj.queue.pop() {
            assert!(f.arm_at_commit >= last);
            last = f.arm_at_commit;
            n += 1;
        }
        assert_eq!(n, 100);
    }
}
