//! Fault injection into forwarded data (paper §V-B).
//!
//! Faults are injected "in the forwarded data from the F2 connected to
//! the big core, e.g., data and address of memory operations and
//! architectural register data, simulating the hardware faults without
//! disrupting the big core's normal execution". Exactly that: the
//! injector flips one bit of a packet as the DEU hands it to the fabric;
//! the big core's architectural execution is untouched, and the checker
//! must notice the divergence.

use meek_fabric::{Packet, Payload};
use meek_isa::state::RegCheckpoint;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::BTreeMap;

/// Where to flip a bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Address of a forwarded memory record.
    MemAddr,
    /// Data of a forwarded memory record.
    MemData,
    /// A register value inside a forwarded checkpoint.
    RcpRegister,
    /// A data bit in the LSQ window between cache and DEU — the span
    /// footnote 2 protects with carried cache parity. The flip strikes
    /// *after* the parity bits were copied, so the DEU's forwarding-time
    /// double-check catches it immediately and re-reads the clean data:
    /// always detected, with ~one-cycle latency, without failing any
    /// segment.
    LsqParity,
    /// A data bit of a cache read (load result) as forwarded to the
    /// checker. Unlike [`FaultSite::MemData`] this only strikes load
    /// records: the corrupted value feeds the replay's dependent
    /// computation and surfaces at a downstream store or the ERCP.
    CacheData,
}

impl FaultSite {
    /// Inverse of [`FaultSite::name`] — lives beside it so adding a
    /// variant forces both mappings to be updated together.
    pub fn from_name(name: &str) -> Option<FaultSite> {
        match name {
            "mem_addr" => Some(FaultSite::MemAddr),
            "mem_data" => Some(FaultSite::MemData),
            "rcp_register" => Some(FaultSite::RcpRegister),
            "lsq_parity" => Some(FaultSite::LsqParity),
            "cache_data" => Some(FaultSite::CacheData),
            _ => None,
        }
    }

    /// Stable lower-case name — the column/field value every sink
    /// (campaign CSV/JSONL, the sim event stream) writes.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::MemAddr => "mem_addr",
            FaultSite::MemData => "mem_data",
            FaultSite::RcpRegister => "rcp_register",
            FaultSite::LsqParity => "lsq_parity",
            FaultSite::CacheData => "cache_data",
        }
    }
}

/// A pending fault: armed at a commit index, fires on the next matching
/// packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Commit index (instructions retired) at which the fault arms.
    pub arm_at_commit: u64,
    /// Which field to corrupt.
    pub site: FaultSite,
    /// Bit to flip (masked to the field width).
    pub bit: u32,
}

/// The register index a [`FaultSite::RcpRegister`] fault with `bit`
/// corrupts — a pseudo-random live register in `x1..x31`. Exposed so
/// external oracles (the difftest coverage prover) can reproduce the
/// exact architectural effect of an injected checkpoint fault.
pub fn rcp_register_index(bit: u32) -> usize {
    (bit as usize * 7 + 3) % 31 + 1
}

/// The clean (pre-flip) value of the packet field a fault corrupted,
/// captured at injection time. A masked verdict alone says "the
/// candidate segments verified clean"; this record is what lets an
/// external oracle *prove* the mask benign by re-running the golden
/// program with and without the corruption applied.
#[derive(Debug, Clone, PartialEq)]
pub enum CorruptedField {
    /// A run-time memory record, as forwarded before the flip.
    Mem {
        /// Effective address of the logged access.
        addr: u64,
        /// Access size in bytes.
        size: u8,
        /// Load result / store payload before corruption.
        data: u64,
        /// `true` for stores.
        is_store: bool,
    },
    /// A checkpoint register: the flipped `x` index (see
    /// [`rcp_register_index`]) and the whole clean checkpoint (boxed:
    /// a checkpoint is 65 words, far larger than the memory variant).
    Register {
        /// Index into `RegCheckpoint::x`.
        index: usize,
        /// The checkpoint as it was before the flip.
        clean_cp: Box<RegCheckpoint>,
    },
}

/// An injected fault whose candidate segments all verified clean — the
/// flipped bit was (apparently) architecturally dead. Distinguished
/// from *pending* faults (no verdict at all) in [`RunReport`]:
/// a masked fault has positive evidence of cleanliness, a pending fault
/// has none.
///
/// [`RunReport`]: crate::report::RunReport
#[derive(Debug, Clone, PartialEq)]
pub struct MaskRecord {
    /// The fault as specified.
    pub spec: FaultSpec,
    /// Big-core cycle of injection.
    pub injected_cycle: u64,
    /// Segment whose forwarded data was corrupted.
    pub seg: u32,
    /// Commit count when the fault armed. The corrupted packet is the
    /// first matching-site packet extracted after this commit index —
    /// the anchor an external golden re-run needs to locate the fault.
    pub armed_at_commit: u64,
    /// Clean value of the corrupted field.
    pub field: CorruptedField,
    /// First commit index of the detection surface the checkers
    /// actually had for this corruption: the fault segment's start for
    /// memory-record faults, the *successor* segment's start (= the
    /// boundary the corrupted checkpoint was cut at) for checkpoint
    /// faults. Segment boundaries re-seed every checker from the big
    /// core's clean shadow, so nothing outside this range could ever
    /// have exposed the flip — an external prover replaying past it
    /// over-convicts.
    pub surface_start: u64,
    /// One-past-the-end commit index of the detection surface. `None`
    /// when the closing boundary never occurred (the run drained inside
    /// the surface segment): the surface extends to the end of the run.
    pub surface_end: Option<u64>,
}

/// Outcome of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionRecord {
    /// Where the bit was flipped.
    pub site: FaultSite,
    /// Big-core cycle of injection.
    pub injected_cycle: u64,
    /// Big-core cycle of detection (checker mismatch report).
    pub detected_cycle: u64,
    /// Detection latency in nanoseconds.
    pub latency_ns: f64,
    /// Segment in which the fault was detected.
    pub seg: u32,
    /// Big-core cycles from this detection to the completed recovery
    /// (rollback + re-execution + clean re-verification) it triggered.
    /// `None` in detect-only runs — and for parity-window detections,
    /// which are corrected in place and need no rollback.
    pub recovery_cycles: Option<u64>,
}

/// The paper's random fault distribution (§V-B): sites drawn uniformly
/// from {memory address, memory data, checkpoint register}, a random
/// bit, arm points spread evenly over `arm_span` committed
/// instructions. The single source of the distribution — the serial
/// [`FaultInjector::random_campaign`] and the sharded campaign engine
/// both sample from here, so the figures and campaign records measure
/// the same thing.
pub fn random_fault_specs(n: usize, arm_span: u64, rng: &mut SmallRng) -> Vec<FaultSpec> {
    let mut faults = Vec::with_capacity(n);
    for i in 0..n {
        let site = match rng.gen_range(0..3) {
            0 => FaultSite::MemAddr,
            1 => FaultSite::MemData,
            _ => FaultSite::RcpRegister,
        };
        let arm_at = (i as u64 + 1) * arm_span / (n as u64 + 1);
        faults.push(FaultSpec { arm_at_commit: arm_at, site, bit: rng.gen_range(0..64) });
    }
    faults
}

#[derive(Debug, Clone)]
struct InFlight {
    spec: FaultSpec,
    injected: u64,
    fseg: u32,
    armed_at_commit: u64,
    field: CorruptedField,
    fseg_passed: bool,
    next_passed: bool,
}

impl InFlight {
    fn mask_record(&self, surface: (u64, Option<u64>)) -> MaskRecord {
        MaskRecord {
            spec: self.spec,
            injected_cycle: self.injected,
            seg: self.fseg,
            armed_at_commit: self.armed_at_commit,
            field: self.field.clone(),
            surface_start: surface.0,
            surface_end: surface.1,
        }
    }
}

/// Injector state machine: Idle -> Armed -> InFlight -> (recorded).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    queue: Vec<FaultSpec>,
    armed: Option<(FaultSpec, u64)>,
    in_flight: Option<InFlight>,
    /// Faults with positive clean evidence (successor segment verified)
    /// whose own segment's verdict is still outstanding. They no longer
    /// occupy the injection pipeline, but a late *fail* verdict for a
    /// candidate segment upgrades them to a detection — the old
    /// "unreachable after 4 segments" heuristic silently dropped those
    /// late detections and misreported them as masked.
    tentative: Vec<InFlight>,
    /// Completed detections.
    pub detections: Vec<DetectionRecord>,
    /// Faults whose candidate segments all verified *clean*: the flip
    /// landed on architecturally dead data. The checker never reported
    /// them, so every entry must be provable benign — the difftest
    /// coverage oracle re-runs the golden program with the recorded
    /// corruption and fails loudly if behaviour diverges.
    pub masked: Vec<MaskRecord>,
    /// When `true`, armed faults do not fire: the recovery subsystem's
    /// golden escalation re-executes a repeatedly-failing region with
    /// injection suppressed, modelling a fully-trusted re-run.
    pub suppressed: bool,
    /// `(site, segment, cycle)` of every corruption that actually fired
    /// since the last [`FaultInjector::take_injections`] — drained each
    /// cycle by the system to emit typed `FaultInjected` events. A
    /// [`FaultInjector::revert`] (dropped packet) pops its entry.
    injection_log: Vec<(FaultSite, u32, u64)>,
    /// Commit index at which each segment's closing boundary fell,
    /// reported by the DEU ([`FaultInjector::on_boundary`]). Mask
    /// records carry the bounds so external provers replay exactly the
    /// detection surface the checkers had. Entries of rolled-back
    /// segments are dropped and re-recorded during re-execution.
    seg_end: BTreeMap<u32, u64>,
}

impl FaultInjector {
    /// Creates an injector with a queue of faults (sorted by arm time).
    pub fn new(mut faults: Vec<FaultSpec>) -> FaultInjector {
        faults.sort_by_key(|f| f.arm_at_commit);
        faults.reverse(); // pop() yields earliest first
        FaultInjector {
            queue: faults,
            armed: None,
            in_flight: None,
            tentative: Vec::new(),
            detections: Vec::new(),
            masked: Vec::new(),
            suppressed: false,
            injection_log: Vec::new(),
            seg_end: BTreeMap::new(),
        }
    }

    /// Records that segment `seg`'s closing boundary fell at commit
    /// index `end_commit` — called by the DEU at every RCP (and at the
    /// final checkpoint). The bounds flow into [`MaskRecord`]s so the
    /// coverage prover replays only the segment(s) the checkers saw.
    pub fn on_boundary(&mut self, seg: u32, end_commit: u64) {
        self.seg_end.insert(seg, end_commit);
    }

    /// The detection-surface commit bounds for a fault injected into
    /// segment `fseg`: the fault segment itself for run-time records,
    /// the successor segment for checkpoint faults (the corrupted
    /// RcpEnd seeds `fseg + 1`'s replay as its SRCP).
    fn surface_of(&self, site: FaultSite, fseg: u32) -> (u64, Option<u64>) {
        match site {
            FaultSite::RcpRegister => (
                self.seg_end.get(&fseg).copied().unwrap_or(0),
                self.seg_end.get(&(fseg + 1)).copied(),
            ),
            _ => (
                fseg.checked_sub(1).and_then(|p| self.seg_end.get(&p).copied()).unwrap_or(0),
                self.seg_end.get(&fseg).copied(),
            ),
        }
    }

    /// Generates `n` random faults spread uniformly over `commit_span`
    /// instructions, mirroring the paper's 5 000–10 000 random faults.
    pub fn random_campaign(n: usize, commit_span: u64, rng: &mut SmallRng) -> FaultInjector {
        FaultInjector::new(random_fault_specs(n, commit_span, rng))
    }

    /// Whether a fault is currently in flight (awaiting detection).
    pub fn busy(&self) -> bool {
        self.in_flight.is_some()
    }

    /// Re-arms the in-flight fault: used when the corrupted packet was
    /// rejected by a full DC-Buffer and dropped (the retried push builds
    /// a fresh packet, so the corruption must fire again).
    pub fn revert(&mut self) {
        if let Some(fl) = self.in_flight.take() {
            self.armed = Some((fl.spec, fl.armed_at_commit));
            // The corruption never left the DEU: un-log its event.
            self.injection_log.pop();
        }
    }

    /// Faults remaining in the queue (not yet armed).
    pub fn remaining(&self) -> usize {
        self.queue.len()
    }

    /// Faults with no verdict yet: still queued, armed but not fired,
    /// in flight awaiting a segment verdict, or tentatively masked with
    /// their own segment's verdict outstanding. At end of run
    /// ([`FaultInjector::resolve_at_drain`]) tentatives settle to
    /// masked; what remains is what the campaign must report as
    /// *pending* — typically a tail fault whose corrupted checkpoint
    /// was the program's last, so no successor segment ever delivered a
    /// verdict.
    pub fn unresolved(&self) -> usize {
        self.queue.len()
            + self.armed.is_some() as usize
            + self.in_flight.is_some() as usize
            + self.tentative.len()
    }

    /// Latest arm point across the queued faults (`None` when empty) —
    /// what `SimBuilder` validates against the instruction budget.
    pub fn latest_arm(&self) -> Option<u64> {
        // The queue is kept reverse-sorted so `pop()` yields earliest
        // first; the latest arm is therefore at the front.
        self.queue.first().map(|f| f.arm_at_commit)
    }

    /// Drains the `(site, segment, cycle)` log of corruptions that
    /// fired since the last call.
    pub fn take_injections(&mut self) -> Vec<(FaultSite, u32, u64)> {
        std::mem::take(&mut self.injection_log)
    }

    /// Arms the next fault once the commit counter passes its trigger.
    /// One fault is outstanding at a time so latencies are unambiguous.
    pub fn advance(&mut self, committed: u64) {
        if self.armed.is_none() && self.in_flight.is_none() {
            if let Some(&f) = self.queue.last() {
                if committed >= f.arm_at_commit {
                    self.queue.pop();
                    // Record the commit count at arming: the corrupted
                    // packet is the first matching-site packet extracted
                    // after this many commits — the anchor the coverage
                    // oracle's golden re-run uses to locate the fault.
                    self.armed = Some((f, committed));
                }
            }
        }
    }

    /// Offers a packet to the injector just before it enters the fabric;
    /// if a matching fault is armed, one bit is flipped in place.
    pub fn maybe_corrupt(&mut self, pkt: &mut Packet, now: u64, seg: u32) {
        if self.suppressed {
            return;
        }
        let Some((f, armed_at_commit)) = self.armed else { return };
        let field = match (&mut pkt.payload, f.site) {
            (Payload::Mem { addr, size, data, is_store, .. }, FaultSite::MemAddr) => {
                let clean = CorruptedField::Mem {
                    addr: *addr,
                    size: *size,
                    data: *data,
                    is_store: *is_store,
                };
                *addr ^= 1 << (f.bit % 64);
                Some(clean)
            }
            // A CacheData fault models corrupted cache *read* data:
            // it strikes the first forwarded load record after arming;
            // stores carry LSQ data, not cache reads, and leave the
            // fault armed.
            (Payload::Mem { is_store: true, .. }, FaultSite::CacheData) => None,
            (
                Payload::Mem { addr, size, data, is_store, .. },
                FaultSite::MemData | FaultSite::CacheData,
            ) => {
                let clean = CorruptedField::Mem {
                    addr: *addr,
                    size: *size,
                    data: *data,
                    is_store: *is_store,
                };
                // Flip within the access width so the corruption is live.
                let width_bits = (*size as u32) * 8;
                *data ^= 1 << (f.bit % width_bits);
                Some(clean)
            }
            (Payload::RcpEnd { cp, .. }, FaultSite::RcpRegister) => {
                // Flip a bit of a (pseudo-randomly chosen) live register.
                let idx = rcp_register_index(f.bit);
                let clean = CorruptedField::Register { index: idx, clean_cp: Box::new(**cp) };
                cp.x[idx] ^= 1 << (f.bit % 64);
                Some(clean)
            }
            _ => None,
        };
        if let Some(field) = field {
            self.armed = None;
            self.injection_log.push((f.site, seg, now));
            self.in_flight = Some(InFlight {
                spec: f,
                injected: now,
                fseg: seg,
                armed_at_commit,
                field,
                fseg_passed: false,
                next_passed: false,
            });
        }
    }

    /// Offers the LSQ-window parity double-check point to the injector.
    /// If a [`FaultSite::LsqParity`] fault is armed, it strikes here:
    /// the returned bit is flipped into the parity-checked window copy
    /// (the caller's per-byte parity check then fails, exactly as
    /// footnote 2's carried cache parity would catch it), the clean
    /// data is re-read, and the fault resolves as an immediate
    /// detection — it never reaches the fabric or a checker.
    pub fn lsq_parity_strike(&mut self, now: u64, seg: u32, ns_per_cycle: f64) -> Option<u32> {
        if self.suppressed {
            return None;
        }
        let (f, _) = self.armed?;
        if f.site != FaultSite::LsqParity {
            return None;
        }
        self.armed = None;
        self.injection_log.push((FaultSite::LsqParity, seg, now));
        self.detections.push(DetectionRecord {
            site: FaultSite::LsqParity,
            injected_cycle: now,
            detected_cycle: now + 1,
            latency_ns: ns_per_cycle,
            seg,
            recovery_cycles: None,
        });
        Some(f.bit)
    }

    /// Squashes injector state for a recovery rollback to `first_seg`:
    /// a fault whose corrupted packet belonged to a squashed segment
    /// never got (and can never get) a verdict — its corruption was
    /// wiped with the segment — so it re-queues and fires again during
    /// re-execution. Resolved faults (detected or masked) are untouched.
    pub fn on_rollback(&mut self, first_seg: u32) {
        let mut requeue = Vec::new();
        if self.in_flight.as_ref().is_some_and(|fl| fl.fseg >= first_seg) {
            requeue.push(self.in_flight.take().expect("checked above").spec);
        }
        let mut i = 0;
        while i < self.tentative.len() {
            if self.tentative[i].fseg >= first_seg {
                requeue.push(self.tentative.remove(i).spec);
            } else {
                i += 1;
            }
        }
        if !requeue.is_empty() {
            self.queue.extend(requeue);
            self.queue.sort_by_key(|f| f.arm_at_commit);
            self.queue.reverse(); // pop() yields earliest first
        }
        // Boundaries of squashed segments are stale: re-execution will
        // re-record them as the segments re-commit.
        self.seg_end.retain(|&s, _| s < first_seg);
    }

    /// Reports a segment verification result to the injector.
    ///
    /// A memory-record fault must be detected while its own segment
    /// replays; a checkpoint fault is the ERCP of segment `fseg` *and*
    /// the SRCP of `fseg + 1`, so detection may land in either (segments
    /// can complete out of order across cores). A fault whose candidate
    /// segments all verified clean is recorded in
    /// [`FaultInjector::masked`].
    pub fn on_segment_verified(&mut self, seg: u32, pass: bool, now: u64, ns_per_cycle: f64) {
        // Tentatively-masked faults first. A tentative's successor
        // segment has already verified clean (that is how it became
        // tentative), so the only verdict still owed is its *own*
        // segment's: a fail upgrades the tentative to a (late)
        // detection, a clean verdict confirms the mask.
        if let Some(pos) = self.tentative.iter().position(|fl| seg == fl.fseg) {
            let fl = self.tentative.remove(pos);
            if pass {
                let surface = self.surface_of(fl.spec.site, fl.fseg);
                self.masked.push(fl.mask_record(surface));
            } else {
                let latency_ns = (now - fl.injected) as f64 * ns_per_cycle;
                self.detections.push(DetectionRecord {
                    site: fl.spec.site,
                    injected_cycle: fl.injected,
                    detected_cycle: now,
                    latency_ns,
                    seg,
                    recovery_cycles: None,
                });
                return; // the fail verdict is this fault's detection
            }
        }
        let surface = self.in_flight.as_ref().map(|fl| self.surface_of(fl.spec.site, fl.fseg));
        let Some(fl) = &mut self.in_flight else { return };
        let surface = surface.expect("computed from the same in-flight fault");
        if seg < fl.fseg {
            return;
        }
        if !pass {
            let latency_ns = (now - fl.injected) as f64 * ns_per_cycle;
            self.detections.push(DetectionRecord {
                site: fl.spec.site,
                injected_cycle: fl.injected,
                detected_cycle: now,
                latency_ns,
                seg,
                recovery_cycles: None,
            });
            self.in_flight = None;
            return;
        }
        match fl.spec.site {
            FaultSite::LsqParity => {
                unreachable!("parity faults detect at forwarding time and are never in flight")
            }
            FaultSite::MemAddr | FaultSite::MemData | FaultSite::CacheData => {
                if seg == fl.fseg {
                    let rec = fl.mask_record(surface);
                    self.masked.push(rec);
                    self.in_flight = None;
                }
            }
            FaultSite::RcpRegister => {
                if seg == fl.fseg {
                    fl.fseg_passed = true;
                } else if seg == fl.fseg + 1 {
                    fl.next_passed = true;
                }
                if fl.next_passed && fl.fseg_passed {
                    let rec = fl.mask_record(surface);
                    self.masked.push(rec);
                    self.in_flight = None;
                } else if fl.next_passed && seg > fl.fseg + 4 {
                    // `fseg`'s own verdict can predate the injection (its
                    // checker may have concluded before the corrupted
                    // packet existed) — or it may simply be slow. Well
                    // past the concurrency window, release the pipeline
                    // but keep the fault *tentative*: if `fseg`'s verdict
                    // does arrive late, it still settles this fault
                    // instead of being silently dropped.
                    let fl = fl.clone();
                    self.tentative.push(fl);
                    self.in_flight = None;
                }
            }
        }
    }

    /// Delivers end-of-run verdicts for the in-flight fault once no more
    /// segment verifications can arrive (the system has drained).
    ///
    /// Without this, a checkpoint fault whose *successor* segment
    /// verified clean but whose own segment's verdict predated the
    /// injection stays `in_flight` forever and is reported as *pending*
    /// — indistinguishable from a fault that never fired — even though
    /// the evidence says it was masked. At drain, a fault whose every
    /// delivered candidate verdict was clean resolves to masked; a fault
    /// with no verdict at all (e.g. a corrupted final checkpoint with no
    /// successor segment) stays pending.
    pub fn resolve_at_drain(&mut self) {
        // Tentatives whose own-segment verdict never arrived: the clean
        // successor verdict stands — masked.
        for fl in std::mem::take(&mut self.tentative) {
            let surface = self.surface_of(fl.spec.site, fl.fseg);
            self.masked.push(fl.mask_record(surface));
        }
        let Some(fl) = self.in_flight.take() else { return };
        let masked = match fl.spec.site {
            FaultSite::LsqParity => {
                unreachable!("parity faults detect at forwarding time and are never in flight")
            }
            // A memory-record fault is judged only by its own segment;
            // no verdict by drain means the record was never replayed.
            FaultSite::MemAddr | FaultSite::MemData | FaultSite::CacheData => false,
            // Either candidate segment verifying clean is positive
            // evidence: the corrupted ERCP matched the replay, or the
            // corrupted SRCP replayed to a clean ERCP.
            FaultSite::RcpRegister => fl.fseg_passed || fl.next_passed,
        };
        if masked {
            let surface = self.surface_of(fl.spec.site, fl.fseg);
            self.masked.push(fl.mask_record(surface));
        } else {
            self.in_flight = Some(fl);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meek_fabric::DestMask;
    use rand::SeedableRng;

    fn mem_pkt() -> Packet {
        Packet {
            seq: 0,
            dest: DestMask::single(0),
            payload: Payload::Mem { seg: 1, addr: 0x1000, size: 8, data: 0xAB, is_store: true },
            created_at: 0,
        }
    }

    #[test]
    fn site_names_round_trip() {
        for site in [
            FaultSite::MemAddr,
            FaultSite::MemData,
            FaultSite::RcpRegister,
            FaultSite::LsqParity,
            FaultSite::CacheData,
        ] {
            assert_eq!(FaultSite::from_name(site.name()), Some(site));
        }
        assert_eq!(FaultSite::from_name("bogus"), None);
    }

    #[test]
    fn corrupts_exactly_one_outstanding_fault() {
        let mut inj = FaultInjector::new(vec![FaultSpec {
            arm_at_commit: 10,
            site: FaultSite::MemData,
            bit: 3,
        }]);
        inj.advance(5);
        let mut p = mem_pkt();
        inj.maybe_corrupt(&mut p, 100, 1);
        assert_eq!(p, mem_pkt(), "not armed yet");
        inj.advance(10);
        inj.maybe_corrupt(&mut p, 100, 1);
        match p.payload {
            Payload::Mem { data, .. } => assert_eq!(data, 0xAB ^ 8),
            _ => unreachable!(),
        }
        assert!(inj.busy());
        // A second packet is NOT corrupted.
        let mut q = mem_pkt();
        inj.maybe_corrupt(&mut q, 101, 1);
        assert_eq!(q, mem_pkt());
    }

    #[test]
    fn latency_recorded_on_detection() {
        let mut inj = FaultInjector::new(vec![FaultSpec {
            arm_at_commit: 0,
            site: FaultSite::MemAddr,
            bit: 5,
        }]);
        inj.advance(0);
        let mut p = mem_pkt();
        inj.maybe_corrupt(&mut p, 1000, 4);
        inj.on_segment_verified(4, false, 4200, 0.3125);
        assert_eq!(inj.detections.len(), 1);
        let d = &inj.detections[0];
        assert_eq!(d.injected_cycle, 1000);
        assert_eq!(d.detected_cycle, 4200);
        assert!((d.latency_ns - 3200.0 * 0.3125).abs() < 1e-9);
        assert!(!inj.busy());
        assert!(inj.masked.is_empty());
    }

    #[test]
    fn rcp_fault_may_detect_in_next_segment() {
        let mut inj = FaultInjector::new(vec![FaultSpec {
            arm_at_commit: 0,
            site: FaultSite::RcpRegister,
            bit: 9,
        }]);
        inj.advance(0);
        let mut p = Packet {
            seq: 0,
            dest: DestMask::single(0),
            payload: Payload::RcpEnd {
                seg: 3,
                inst_count: 100,
                cp: Box::new(meek_isa::state::RegCheckpoint::zeroed(0)),
            },
            created_at: 0,
        };
        inj.maybe_corrupt(&mut p, 500, 3);
        assert!(inj.busy());
        // Segment 3 verifies clean (fault was in its ERCP *as forwarded*,
        // but detection can land in segment 4 whose SRCP it corrupts).
        inj.on_segment_verified(3, true, 600, 0.3125);
        assert!(inj.busy(), "still awaiting detection in segment 4");
        inj.on_segment_verified(4, false, 900, 0.3125);
        assert_eq!(inj.detections.len(), 1);
    }

    #[test]
    fn masked_mem_fault_records_clean_field() {
        let mut inj = FaultInjector::new(vec![FaultSpec {
            arm_at_commit: 0,
            site: FaultSite::MemData,
            bit: 2,
        }]);
        inj.advance(17);
        let mut p = mem_pkt();
        inj.maybe_corrupt(&mut p, 50, 2);
        // Segment 2 verifies clean: the flip landed on dead data.
        inj.on_segment_verified(2, true, 400, 0.3125);
        assert!(!inj.busy());
        assert_eq!(inj.masked.len(), 1);
        let m = &inj.masked[0];
        assert_eq!(m.seg, 2);
        assert_eq!(m.armed_at_commit, 17, "arming commit index is the re-run anchor");
        assert_eq!(
            m.field,
            CorruptedField::Mem { addr: 0x1000, size: 8, data: 0xAB, is_store: true },
            "the clean pre-flip record must be captured"
        );
    }

    #[test]
    fn rcp_mask_resolves_at_drain_not_pending() {
        // The latent reporting bug: fseg's verdict predates the
        // injection, the successor verifies clean, the run drains — the
        // fault used to stay in_flight forever and count as pending.
        let mut inj = FaultInjector::new(vec![FaultSpec {
            arm_at_commit: 0,
            site: FaultSite::RcpRegister,
            bit: 11,
        }]);
        inj.advance(0);
        let mut p = Packet {
            seq: 0,
            dest: DestMask::single(0),
            payload: Payload::RcpEnd {
                seg: 5,
                inst_count: 100,
                cp: Box::new(meek_isa::state::RegCheckpoint::zeroed(0x1000)),
            },
            created_at: 0,
        };
        inj.maybe_corrupt(&mut p, 500, 5);
        // Only the successor's verdict arrives (clean); segment 5's
        // checker concluded before the corrupted ERCP existed.
        inj.on_segment_verified(6, true, 900, 0.3125);
        assert!(inj.busy(), "no drain yet: still awaiting fseg's (impossible) verdict");
        assert_eq!(inj.unresolved(), 1);
        inj.resolve_at_drain();
        assert!(!inj.busy());
        assert_eq!(inj.unresolved(), 0, "resolved masked, not pending");
        assert_eq!(inj.masked.len(), 1);
        match &inj.masked[0].field {
            CorruptedField::Register { index, clean_cp } => {
                assert_eq!(*index, rcp_register_index(11));
                assert_eq!(**clean_cp, meek_isa::state::RegCheckpoint::zeroed(0x1000));
            }
            f => panic!("wrong field kind: {f:?}"),
        }
    }

    #[test]
    fn late_fail_verdict_upgrades_tentative_mask_to_detection() {
        // The lost-detection bug: successor segments verify clean and
        // race past the concurrency window, then the corrupted
        // segment's own checker finally fails. The old heuristic had
        // already written the fault off as masked; now the tentative
        // record turns the late verdict into a detection.
        let mut inj = FaultInjector::new(vec![FaultSpec {
            arm_at_commit: 0,
            site: FaultSite::RcpRegister,
            bit: 7,
        }]);
        inj.advance(100);
        let mut p = Packet {
            seq: 0,
            dest: DestMask::single(0),
            payload: Payload::RcpEnd {
                seg: 10,
                inst_count: 100,
                cp: Box::new(meek_isa::state::RegCheckpoint::zeroed(0x1000)),
            },
            created_at: 0,
        };
        inj.maybe_corrupt(&mut p, 500, 10);
        inj.on_segment_verified(11, true, 600, 0.3125); // successor clean
        for seg in 12..=15 {
            inj.on_segment_verified(seg, true, 600 + seg as u64, 0.3125);
        }
        assert!(!inj.busy(), "well past the window: pipeline released");
        assert!(inj.masked.is_empty(), "but not yet declared masked");
        assert_eq!(inj.unresolved(), 1, "tentative counts as unresolved");
        // Segment 10's slow checker finally reports the corrupted ERCP.
        inj.on_segment_verified(10, false, 2_000, 0.3125);
        assert_eq!(inj.detections.len(), 1, "late fail verdict must become a detection");
        assert_eq!(inj.detections[0].seg, 10);
        assert!(inj.masked.is_empty());
        assert_eq!(inj.unresolved(), 0);
    }

    #[test]
    fn tentative_confirms_masked_on_clean_own_verdict() {
        let mut inj = FaultInjector::new(vec![FaultSpec {
            arm_at_commit: 0,
            site: FaultSite::RcpRegister,
            bit: 7,
        }]);
        inj.advance(0);
        let mut p = Packet {
            seq: 0,
            dest: DestMask::single(0),
            payload: Payload::RcpEnd {
                seg: 10,
                inst_count: 100,
                cp: Box::new(meek_isa::state::RegCheckpoint::zeroed(0x1000)),
            },
            created_at: 0,
        };
        inj.maybe_corrupt(&mut p, 500, 10);
        for seg in 11..=15 {
            inj.on_segment_verified(seg, true, 600, 0.3125);
        }
        inj.on_segment_verified(10, true, 2_000, 0.3125);
        assert_eq!(inj.masked.len(), 1, "own clean verdict confirms the mask");
        assert!(inj.detections.is_empty());
        assert_eq!(inj.unresolved(), 0);
    }

    #[test]
    fn unfired_fault_stays_pending_at_drain() {
        let mut inj = FaultInjector::new(vec![FaultSpec {
            arm_at_commit: 1_000_000,
            site: FaultSite::MemAddr,
            bit: 0,
        }]);
        inj.advance(10);
        inj.resolve_at_drain();
        assert_eq!(inj.unresolved(), 1, "a fault that never armed is pending, not masked");
        assert!(inj.masked.is_empty());
    }

    #[test]
    fn lsq_parity_fault_detects_at_the_window() {
        let mut inj = FaultInjector::new(vec![FaultSpec {
            arm_at_commit: 0,
            site: FaultSite::LsqParity,
            bit: 13,
        }]);
        inj.advance(0);
        // The parity fault must not touch forwarded packets…
        let mut p = mem_pkt();
        inj.maybe_corrupt(&mut p, 90, 2);
        assert_eq!(p, mem_pkt());
        // …it strikes at the LSQ parity double-check.
        assert_eq!(inj.lsq_parity_strike(100, 2, 0.3125), Some(13));
        assert!(!inj.busy(), "parity detections never occupy the pipeline");
        assert_eq!(inj.detections.len(), 1);
        let d = &inj.detections[0];
        assert_eq!(d.site, FaultSite::LsqParity);
        assert_eq!(d.detected_cycle, d.injected_cycle + 1);
        assert!(d.latency_ns > 0.0);
        assert_eq!(inj.lsq_parity_strike(101, 2, 0.3125), None, "one-shot");
    }

    #[test]
    fn cache_data_fault_skips_stores_and_strikes_loads() {
        let mut inj = FaultInjector::new(vec![FaultSpec {
            arm_at_commit: 0,
            site: FaultSite::CacheData,
            bit: 4,
        }]);
        inj.advance(0);
        let mut store = mem_pkt(); // is_store: true
        inj.maybe_corrupt(&mut store, 50, 1);
        assert_eq!(store, mem_pkt(), "stores carry LSQ data, not cache reads");
        assert!(!inj.busy());
        let mut load = Packet {
            seq: 1,
            dest: DestMask::single(0),
            payload: Payload::Mem { seg: 1, addr: 0x2000, size: 4, data: 0xF0, is_store: false },
            created_at: 0,
        };
        inj.maybe_corrupt(&mut load, 51, 1);
        match load.payload {
            Payload::Mem { data, .. } => assert_eq!(data, 0xF0 ^ 0x10),
            _ => unreachable!(),
        }
        assert!(inj.busy());
        inj.on_segment_verified(1, false, 500, 0.3125);
        assert_eq!(inj.detections.len(), 1);
        assert_eq!(inj.detections[0].site, FaultSite::CacheData);
    }

    #[test]
    fn suppressed_injector_holds_fire() {
        let mut inj = FaultInjector::new(vec![FaultSpec {
            arm_at_commit: 0,
            site: FaultSite::MemData,
            bit: 1,
        }]);
        inj.advance(0);
        inj.suppressed = true;
        let mut p = mem_pkt();
        inj.maybe_corrupt(&mut p, 10, 1);
        assert_eq!(p, mem_pkt(), "golden re-execution must see no corruption");
        inj.suppressed = false;
        inj.maybe_corrupt(&mut p, 11, 1);
        assert_ne!(p, mem_pkt(), "the armed fault fires once suppression lifts");
    }

    #[test]
    fn rollback_requeues_unresolved_faults_of_squashed_segments() {
        let mut inj = FaultInjector::new(vec![FaultSpec {
            arm_at_commit: 7,
            site: FaultSite::MemData,
            bit: 2,
        }]);
        inj.advance(10);
        let mut p = mem_pkt();
        inj.maybe_corrupt(&mut p, 100, 5);
        assert!(inj.busy());
        // Rollback to segment 4 squashes segment 5's corrupted packet.
        inj.on_rollback(4);
        assert!(!inj.busy());
        assert_eq!(inj.remaining(), 1, "the fault re-queues and will fire again");
        // A rollback *behind* the fault's segment leaves it alone.
        inj.advance(10);
        let mut q = mem_pkt();
        inj.maybe_corrupt(&mut q, 200, 6);
        assert!(inj.busy());
        inj.on_rollback(7);
        assert!(inj.busy(), "segment 6 predates the rollback point");
    }

    #[test]
    fn corrupted_register_index_is_shared() {
        // The oracle-side reconstruction must use the same mapping the
        // injector does.
        for bit in 0..64 {
            let idx = rcp_register_index(bit);
            assert!((1..32).contains(&idx), "bit {bit} -> x{idx}");
        }
    }

    #[test]
    fn random_campaign_is_ordered_and_sized() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut inj = FaultInjector::random_campaign(100, 1_000_000, &mut rng);
        let mut last = 0;
        let mut n = 0;
        while let Some(f) = inj.queue.pop() {
            assert!(f.arm_at_commit >= last);
            last = f.arm_at_commit;
            n += 1;
        }
        assert_eq!(n, 100);
    }
}
