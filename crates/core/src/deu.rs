//! The Data Extraction Unit (paper §III-A, Fig. 3).
//!
//! The DEU sits on the commit stage as a read-only observation channel:
//! its Commit Detector watches opcode/funct fields of retiring
//! instructions, extracts *run-time data* (load/store addresses and
//! data, CSR read results) between checkpoints and *status data* (the
//! architectural register files) at checkpoints, and hands packets to
//! the forwarding fabric through the per-commit-path DC-Buffers.
//!
//! Because the timing model is commit-order-functional, the DEU keeps a
//! commit-order **shadow register state** — the model equivalent of
//! reading the PRFs through the preempting controller of Fig. 3 — and
//! snapshots it into a [`RegCheckpoint`] at every RCP.
//!
//! RCPs are taken when (paper §II): the targeted LSL is full (segment
//! record budget), the instruction timeout (5 000) is reached, or the
//! kernel is trapped. Checkpoint transfers are chunked to the fabric's
//! datapath width and streamed in the background through the status
//! FIFOs, multicast to the checkers of both adjacent segments when both
//! can receive (selective broadcast); when no little core is free for
//! the next segment, the SRCP transfer is *owed* and sent as soon as the
//! OS hands the DEU a checker — and in the meantime the big core's
//! commit of further logged instructions stalls, which is exactly the
//! computation-bound backpressure of §V-D.

use crate::fault::FaultInjector;
use crate::segments::SegmentManager;
use meek_bigcore::{CommitDecision, CommitHook, CommitStall};
use meek_fabric::{DestMask, Fabric, Packet, PacketKind, PacketSink, Payload};
use meek_isa::state::RegCheckpoint;
use meek_isa::{Retired, WbDest};
use meek_littlecore::LittleCore;
use meek_mem::byte_parity;
use meek_recover::RecoveryManager;
use std::collections::{BTreeMap, VecDeque};

/// Nanoseconds per big-core cycle at 3.2 GHz (Table II).
pub const BIG_CORE_NS_PER_CYCLE: f64 = 0.3125;

/// An in-flight checkpoint transfer (chunked over status packets).
#[derive(Debug, Clone)]
struct Transfer {
    seg: u32,
    inst_count: u64,
    cp: RegCheckpoint,
    dest: DestMask,
    next_chunk: u8,
    total: u8,
}

/// An SRCP transfer that could not be multicast because the next
/// segment had no checker yet.
#[derive(Debug, Clone)]
struct OwedSrcp {
    /// The segment whose checker, once assigned, must receive this.
    seg_to_open: u32,
    cp: RegCheckpoint,
    inst_count: u64,
}

/// DEU state: shadow registers, segmentation counters, and the transfer
/// queue.
#[derive(Debug, Clone)]
pub struct DeuState {
    /// Checking capacity (toggled by `b.check`).
    pub enabled: bool,
    shadow: RegCheckpoint,
    /// Commit-order CSR shadow (RCPs exclude CSRs; recovery rollback
    /// must restore them, so the DEU tracks CSR write side-effects the
    /// same way it shadows the PRFs).
    pub(crate) shadow_csrs: BTreeMap<u16, u64>,
    /// Cumulative instructions committed — the commit-index anchor for
    /// pinned recovery checkpoints.
    pub(crate) committed_total: u64,
    seq: u64,
    /// Current (open) segment id; segment ids start at 1.
    pub seg: u32,
    insts_in_seg: u64,
    records_in_seg: u64,
    record_budget: u64,
    timeout: u64,
    kernel_trap_pending: bool,
    transfers: VecDeque<Transfer>,
    owed: Option<OwedSrcp>,
    lane_rr: usize,
    lanes: usize,
    chunks_per_cp: u8,
    /// Set once the final checkpoint has been queued at end of run.
    pub finalized: bool,
    /// RCPs taken.
    pub rcps: u64,
    /// Run-time packets pushed.
    pub runtime_packets: u64,
    /// LSQ parity double-checks performed (footnote 2).
    pub parity_checks: u64,
    /// Parity mismatches caught in the LSQ window (faults injected into
    /// LSQ data rather than the fabric would land here).
    pub parity_errors: u64,
}

impl DeuState {
    /// Creates a DEU for a big core with `lanes` commit paths, a fabric
    /// carrying `payload_words` 64-bit words per packet, and the given
    /// segmentation parameters.
    pub fn new(
        lanes: usize,
        payload_words: u32,
        record_budget: u64,
        timeout: u64,
        initial: RegCheckpoint,
    ) -> DeuState {
        let total_words = RegCheckpoint::WORDS as u32;
        let chunks = total_words.div_ceil(payload_words) as u8;
        DeuState {
            enabled: true,
            shadow: initial,
            shadow_csrs: BTreeMap::new(),
            committed_total: 0,
            seq: 0,
            seg: 1,
            insts_in_seg: 0,
            records_in_seg: 0,
            record_budget,
            timeout,
            kernel_trap_pending: false,
            transfers: VecDeque::new(),
            owed: None,
            lane_rr: 0,
            lanes,
            chunks_per_cp: chunks,
            finalized: false,
            rcps: 0,
            runtime_packets: 0,
            parity_checks: 0,
            parity_errors: 0,
        }
    }

    /// Status chunks one checkpoint occupies in an LSL.
    pub fn chunks_per_cp(&self) -> usize {
        self.chunks_per_cp as usize
    }

    /// Instructions committed in the open segment.
    pub fn insts_in_seg(&self) -> u64 {
        self.insts_in_seg
    }

    /// A copy of the commit-order shadow registers (the PRF view the DEU
    /// reads at an RCP).
    pub fn shadow_checkpoint(&self) -> RegCheckpoint {
        self.shadow
    }

    /// Whether a segment boundary is due before the next commit.
    fn boundary_due(&self) -> bool {
        self.records_in_seg >= self.record_budget
            || self.insts_in_seg >= self.timeout
            || self.kernel_trap_pending
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn next_lane(&mut self) -> usize {
        self.lane_rr = (self.lane_rr + 1) % self.lanes;
        self.lane_rr
    }

    /// Queues a checkpoint transfer.
    pub(crate) fn queue_transfer(
        &mut self,
        seg: u32,
        inst_count: u64,
        cp: RegCheckpoint,
        dest: DestMask,
    ) {
        self.transfers.push_back(Transfer {
            seg,
            inst_count,
            cp,
            dest,
            next_chunk: 0,
            total: self.chunks_per_cp,
        });
    }

    /// Streams queued checkpoint chunks into the DC-Buffers. Called once
    /// per big-core cycle; pushes as many chunks as the status FIFOs
    /// accept this cycle.
    pub fn pump_transfers(
        &mut self,
        fabric: &mut dyn Fabric,
        injector: &mut FaultInjector,
        now: u64,
    ) {
        while let Some(t) = self.transfers.front_mut() {
            let is_last = t.next_chunk + 1 == t.total;
            let payload = if is_last {
                Payload::RcpEnd { seg: t.seg, inst_count: t.inst_count, cp: Box::new(t.cp) }
            } else {
                Payload::RcpChunk { seg: t.seg, chunk: t.next_chunk, total: t.total }
            };
            let seg = t.seg;
            let dest = t.dest;
            let mut pkt = Packet { seq: 0, dest, payload, created_at: now };
            let was_busy = injector.busy();
            if is_last {
                injector.maybe_corrupt(&mut pkt, now, seg);
            }
            pkt.seq = self.next_seq();
            let lane = self.next_lane();
            match fabric.try_push(lane, pkt) {
                Ok(()) => {
                    let t = self.transfers.front_mut().expect("front exists");
                    t.next_chunk += 1;
                    if t.next_chunk == t.total {
                        self.transfers.pop_front();
                    }
                }
                Err(_) => {
                    // Chunk retained (next_chunk unchanged); undo a
                    // corruption that fired on the dropped packet.
                    if !was_busy && injector.busy() {
                        injector.revert();
                    }
                    self.seq -= 1;
                    break;
                }
            }
        }
    }

    /// Whether all checkpoint data has left the DEU.
    pub fn transfers_drained(&self) -> bool {
        self.transfers.is_empty()
    }

    /// Rewinds the DEU to the start of segment `seg` — the extraction
    /// half of a recovery rollback. In-flight transfers and the owed
    /// SRCP are squashed (the fabric flush drops their already-pushed
    /// chunks), the shadow state snaps to the restored checkpoint, and
    /// segmentation restarts at the rolled-back boundary.
    pub(crate) fn rollback(
        &mut self,
        seg: u32,
        cp: RegCheckpoint,
        csrs: BTreeMap<u16, u64>,
        commit_index: u64,
    ) {
        self.seg = seg;
        self.insts_in_seg = 0;
        self.records_in_seg = 0;
        self.kernel_trap_pending = false;
        self.shadow = cp;
        self.shadow_csrs = csrs;
        self.committed_total = commit_index;
        self.transfers.clear();
        self.owed = None;
        self.finalized = false;
    }
}

/// The DEU wired to the rest of the system for one big-core `tick` —
/// implements the big core's [`CommitHook`] observation channel.
pub struct DeuHook<'a> {
    /// DEU state.
    pub deu: &'a mut DeuState,
    /// The forwarding fabric (F2 or AXI).
    pub fabric: &'a mut dyn Fabric,
    /// The little cores (for LSL admission queries and assignment).
    pub littles: &'a mut [LittleCore],
    /// Segment-to-checker scheduling.
    pub seg_mgr: &'a mut SegmentManager,
    /// Fault injector (corrupts forwarded packets).
    pub injector: &'a mut FaultInjector,
    /// Recovery manager (pins a checkpoint at every segment boundary;
    /// inert when the policy is disabled).
    pub recover: &'a mut RecoveryManager,
}

impl DeuHook<'_> {
    /// Ensures segment `seg` has a checker, delivering any owed SRCP to
    /// the newly assigned core. Returns the checker id if available.
    pub(crate) fn ensure_checker(&mut self, seg: u32) -> Option<usize> {
        if let Some(c) = self.seg_mgr.checker_of(seg) {
            return Some(c);
        }
        let c = self.seg_mgr.try_open(seg, self.littles)?;
        if let Some(owed) = self.deu.owed.take() {
            if owed.seg_to_open == seg {
                // Deliver the SRCP the multicast could not reach earlier —
                // unless the core carried it as its own previous ERCP.
                let prev_checker_same = self.littles.get(c).is_some_and(|lc| lc.id == c)
                    && self.seg_mgr.checker_of(seg.wrapping_sub(1)) == Some(c);
                if !prev_checker_same {
                    self.deu.queue_transfer(
                        owed.seg_to_open - 1,
                        owed.inst_count,
                        owed.cp,
                        DestMask::single(c),
                    );
                }
            } else {
                self.deu.owed = Some(owed);
            }
        }
        Some(c)
    }

    /// Handles a due segment boundary before committing an instruction.
    /// Returns `None` when commit may proceed, or a stall verdict.
    fn handle_boundary(&mut self, _now: u64) -> Option<CommitDecision> {
        let cur = self.deu.seg;
        // The current segment's checker receives the checkpoint as its
        // ERCP — unless it already delivered a (failure) verdict while
        // the segment was still committing.
        let cur_checker = if self.seg_mgr.is_concluded(cur) {
            None
        } else {
            match self.seg_mgr.checker_of(cur).or_else(|| self.ensure_checker(cur)) {
                Some(c) => Some(c),
                None => return Some(CommitDecision::Stall(CommitStall::LittleCore)),
            }
        };
        let mut dest = DestMask::default();
        if let Some(c) = cur_checker {
            dest = dest.with(c);
        }
        let cp = self.deu.shadow;
        let inst_count = self.deu.insts_in_seg;
        match self.seg_mgr.try_open(cur + 1, self.littles) {
            Some(next_checker) => {
                dest = dest.with(next_checker);
            }
            None => {
                // Selective broadcast: send now to the ready checker,
                // owe the SRCP to the eventual checker of cur + 1.
                self.deu.owed = Some(OwedSrcp { seg_to_open: cur + 1, cp, inst_count });
            }
        }
        if !dest.is_empty() {
            self.deu.queue_transfer(cur, inst_count, cp, dest);
        }
        // The injector learns where each segment's boundary fell so mask
        // records can carry exact detection-surface commit bounds.
        self.injector.on_boundary(cur, self.deu.committed_total);
        self.deu.rcps += 1;
        self.deu.seg = cur + 1;
        self.deu.insts_in_seg = 0;
        self.deu.records_in_seg = 0;
        self.deu.kernel_trap_pending = false;
        // The boundary state is the new segment's start checkpoint:
        // pinned until its verdict drains, it is what a detection in
        // segment `cur + 1` rolls back to.
        if self.recover.enabled() {
            self.recover.pin_checkpoint(
                cur + 1,
                self.deu.committed_total,
                cp,
                self.deu.shadow_csrs.clone(),
            );
        }
        None
    }

    /// Builds and pushes the run-time packet for a retiring instruction.
    fn push_runtime(&mut self, lane: usize, ret: &Retired, now: u64) -> Option<CommitDecision> {
        let seg = self.deu.seg;
        let payload = if let Some(m) = ret.mem {
            // Footnote 2: double-check the parity carried through the
            // LSQ window before the data leaves the core. An injected
            // LSQ-window flip strikes after the cache parity was copied,
            // so the check fails, the error is counted, and the clean
            // data is re-read — the corruption never leaves the core.
            self.deu.parity_checks += 1;
            let carried = byte_parity(m.data);
            let window_data = match self.injector.lsq_parity_strike(now, seg, BIG_CORE_NS_PER_CYCLE)
            {
                Some(bit) => m.data ^ (1 << (bit % (m.size as u32 * 8))),
                None => m.data,
            };
            if !meek_mem::check_parity(window_data, carried) {
                self.deu.parity_errors += 1;
            }
            Payload::Mem { seg, addr: m.addr, size: m.size, data: m.data, is_store: m.is_store }
        } else if let Some((addr, data)) = ret.csr_read {
            Payload::Csr { seg, addr, data }
        } else {
            return None;
        };
        if self.seg_mgr.is_concluded(seg) {
            // The checker already reported this segment (a detection
            // fired mid-segment); the remaining records have no consumer.
            return None;
        }
        let Some(checker) = self.ensure_checker(seg) else {
            return Some(CommitDecision::Stall(CommitStall::LittleCore));
        };
        let mut pkt = Packet { seq: 0, dest: DestMask::single(checker), payload, created_at: now };
        let was_busy = self.injector.busy();
        self.injector.maybe_corrupt(&mut pkt, now, seg);
        pkt.seq = self.deu.next_seq();
        match self.fabric.try_push(lane, pkt) {
            Ok(()) => {
                self.deu.runtime_packets += 1;
                self.deu.records_in_seg += 1;
                None
            }
            Err(_) => {
                if !was_busy && self.injector.busy() {
                    self.injector.revert();
                }
                self.deu.seq -= 1;
                let reason = if !self.littles[checker].lsl.can_accept(PacketKind::Runtime) {
                    CommitStall::LittleCore
                } else {
                    CommitStall::DataForward
                };
                Some(CommitDecision::Stall(reason))
            }
        }
    }

    fn update_shadow(&mut self, ret: &Retired) {
        match ret.wb {
            Some((WbDest::Int(r), v)) if r.index() != 0 => {
                self.deu.shadow.x[r.index() as usize] = v;
            }
            Some((WbDest::Int(_), _)) => {} // x0 writes are architectural no-ops
            Some((WbDest::Fp(r), v)) => self.deu.shadow.f[r.index() as usize] = v,
            None => {}
        }
        if let Some((addr, v)) = ret.csr_write {
            self.deu.shadow_csrs.insert(addr, v);
        }
        self.deu.shadow.pc = ret.next_pc;
    }
}

impl CommitHook for DeuHook<'_> {
    fn on_commit(&mut self, lane: usize, ret: &Retired, now: u64) -> CommitDecision {
        if !self.deu.enabled {
            self.update_shadow(ret);
            return CommitDecision::Proceed;
        }
        if self.deu.boundary_due() {
            if let Some(stall) = self.handle_boundary(now) {
                return stall;
            }
        }
        if let Some(stall) = self.push_runtime(lane, ret, now) {
            return stall;
        }
        self.update_shadow(ret);
        self.deu.insts_in_seg += 1;
        self.deu.committed_total += 1;
        if ret.is_kernel_trap {
            self.deu.kernel_trap_pending = true;
        }
        CommitDecision::Proceed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meek_fabric::{F2Config, F2};
    use meek_isa::inst::{AluImmOp, Inst};
    use meek_isa::{ExecClass, Reg};
    use meek_littlecore::LittleCoreConfig;

    fn fake_retired(seg_pc: u64, mem: Option<meek_isa::MemAccess>, trap: bool) -> Retired {
        let inst = Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X1, rs1: Reg::X0, imm: 1 };
        Retired {
            pc: seg_pc,
            raw: 0,
            inst,
            class: if mem.is_some() { ExecClass::Load } else { ExecClass::IntAlu },
            next_pc: seg_pc + 4,
            branch: None,
            mem,
            csr_read: None,
            csr_write: None,
            is_kernel_trap: trap,
            syscall: None,
            wb: Some((WbDest::Int(Reg::X1), 7)),
        }
    }

    struct Rig {
        deu: DeuState,
        fabric: F2,
        littles: Vec<LittleCore>,
        seg_mgr: SegmentManager,
        injector: FaultInjector,
        recover: RecoveryManager,
    }

    impl Rig {
        fn new(n_little: usize, budget: u64, timeout: u64) -> Rig {
            let mut rig = Rig {
                deu: DeuState::new(4, 4, budget, timeout, RegCheckpoint::zeroed(0x1000)),
                fabric: F2::new(F2Config::default()),
                littles: (0..n_little)
                    .map(|i| LittleCore::new(i, LittleCoreConfig::optimized(), 17))
                    .collect(),
                seg_mgr: SegmentManager::new(),
                injector: FaultInjector::new(vec![]),
                recover: RecoveryManager::new(meek_recover::RecoveryPolicy::default()),
            };
            // Segment 1 opens at b.hook time.
            rig.seg_mgr.try_open(1, &mut rig.littles).expect("core available");
            rig
        }

        fn hook(&mut self) -> DeuHook<'_> {
            DeuHook {
                deu: &mut self.deu,
                fabric: &mut self.fabric,
                littles: &mut self.littles,
                seg_mgr: &mut self.seg_mgr,
                injector: &mut self.injector,
                recover: &mut self.recover,
            }
        }
    }

    #[test]
    fn timeout_triggers_rcp() {
        let mut rig = Rig::new(2, 1_000_000, 10);
        for i in 0..10 {
            let r = fake_retired(0x1000 + i * 4, None, false);
            assert_eq!(rig.hook().on_commit(0, &r, i), CommitDecision::Proceed);
        }
        assert_eq!(rig.deu.rcps, 0);
        // The 11th commit crosses the timeout boundary.
        let r = fake_retired(0x1028, None, false);
        assert_eq!(rig.hook().on_commit(0, &r, 10), CommitDecision::Proceed);
        assert_eq!(rig.deu.rcps, 1);
        assert_eq!(rig.deu.seg, 2);
        assert_eq!(rig.deu.insts_in_seg(), 1);
    }

    #[test]
    fn record_budget_triggers_rcp() {
        let mut rig = Rig::new(2, 3, 1_000_000);
        for i in 0..4 {
            let mem = Some(meek_isa::MemAccess {
                addr: 0x8000 + i * 8,
                size: 8,
                data: i,
                is_store: false,
            });
            let r = fake_retired(0x1000 + i * 4, mem, false);
            assert_eq!(rig.hook().on_commit(0, &r, i), CommitDecision::Proceed, "commit {i}");
        }
        assert_eq!(rig.deu.rcps, 1, "boundary after 3 records");
        assert_eq!(rig.deu.seg, 2);
    }

    #[test]
    fn kernel_trap_triggers_rcp() {
        let mut rig = Rig::new(2, 1_000_000, 1_000_000);
        let r = fake_retired(0x1000, None, true);
        rig.hook().on_commit(0, &r, 0);
        assert_eq!(rig.deu.rcps, 0);
        let r2 = fake_retired(0x1004, None, false);
        rig.hook().on_commit(0, &r2, 1);
        assert_eq!(rig.deu.rcps, 1, "RCP right after the trap");
    }

    #[test]
    fn single_core_owes_srcp_and_makes_progress() {
        let mut rig = Rig::new(1, 2, 1_000_000);
        // Fill segment 1's budget.
        for i in 0..2 {
            let mem = Some(meek_isa::MemAccess {
                addr: 0x8000 + i * 8,
                size: 8,
                data: i,
                is_store: false,
            });
            let r = fake_retired(0x1000 + i * 4, mem, false);
            assert_eq!(rig.hook().on_commit(0, &r, i), CommitDecision::Proceed);
        }
        // Boundary: the only core is busy with segment 1, so the next
        // segment cannot open — but the ERCP is still emitted (owed
        // SRCP), and the boundary itself does not stall commit of
        // non-memory instructions.
        let r = fake_retired(0x1010, None, false);
        assert_eq!(rig.hook().on_commit(0, &r, 3), CommitDecision::Proceed);
        assert_eq!(rig.deu.rcps, 1);
        assert_eq!(rig.deu.seg, 2);
        // A memory op in segment 2 cannot be logged yet: no checker.
        let mem = Some(meek_isa::MemAccess { addr: 0x9000, size: 8, data: 1, is_store: true });
        let r = fake_retired(0x1014, mem, false);
        assert_eq!(rig.hook().on_commit(0, &r, 4), CommitDecision::Stall(CommitStall::LittleCore));
    }

    #[test]
    fn shadow_tracks_writebacks() {
        let mut rig = Rig::new(2, 1_000_000, 1_000_000);
        let r = fake_retired(0x1000, None, false);
        rig.hook().on_commit(0, &r, 0);
        assert_eq!(rig.deu.shadow.x[1], 7);
        assert_eq!(rig.deu.shadow.pc, 0x1004);
    }

    #[test]
    fn disabled_deu_is_transparent() {
        let mut rig = Rig::new(1, 1, 1);
        rig.deu.enabled = false;
        for i in 0..100 {
            let mem = Some(meek_isa::MemAccess { addr: 0x8000, size: 8, data: 0, is_store: true });
            let r = fake_retired(0x1000 + i * 4, mem, false);
            assert_eq!(rig.hook().on_commit(0, &r, i), CommitDecision::Proceed);
        }
        assert_eq!(rig.deu.rcps, 0);
        assert_eq!(rig.deu.runtime_packets, 0);
    }

    #[test]
    fn chunking_matches_fabric_width() {
        let deu = DeuState::new(4, 4, 10, 10, RegCheckpoint::zeroed(0));
        assert_eq!(deu.chunks_per_cp(), 17); // ceil(65 / 4)
        let deu2 = DeuState::new(4, 2, 10, 10, RegCheckpoint::zeroed(0));
        assert_eq!(deu2.chunks_per_cp(), 33); // ceil(65 / 2)
    }

    #[test]
    fn pump_streams_checkpoints() {
        let mut rig = Rig::new(2, 1, 1_000_000);
        // One record then a boundary.
        let mem = Some(meek_isa::MemAccess { addr: 0x8000, size: 8, data: 5, is_store: false });
        rig.hook().on_commit(0, &fake_retired(0x1000, mem, false), 0);
        rig.hook().on_commit(0, &fake_retired(0x1004, None, false), 1);
        assert_eq!(rig.deu.rcps, 1);
        assert!(!rig.deu.transfers_drained());
        for now in 2..50 {
            rig.deu.pump_transfers(&mut rig.fabric, &mut rig.injector, now);
        }
        assert!(rig.deu.transfers_drained());
    }
}
