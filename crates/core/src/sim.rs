//! Typed, validating simulation construction and structured run
//! introspection — the one composable entry point every harness
//! (campaign engine, difftest oracles, benches, examples) builds its
//! systems through.
//!
//! Historically each downstream crate hand-assembled a [`MeekSystem`]
//! through a different ad-hoc sequence (`new` vs `with_fabric`, then
//! `set_faults`/`set_injector`, then a manually computed cycle cap
//! threaded into `run_to_completion`) and introspected runs through
//! preformatted debug strings. [`SimBuilder`] replaces all of that:
//!
//! * every knob (workload, little-core count, fabric kind or a custom
//!   fabric, recovery policy, fault plan, instruction budget) is set on
//!   one builder, and degenerate combinations are rejected with a typed
//!   [`BuildError`] instead of a mid-run panic;
//! * the simulation liveness bound is derived internally from the
//!   instruction budget ([`cycle_cap`]) — widened automatically for
//!   recovery-enabled runs, whose rollbacks legitimately re-execute
//!   work — with [`SimBuilder::cycle_headroom`] for stress scenarios
//!   beyond even that;
//! * [`Sim::run`] yields a structured [`RunOutcome`] — the familiar
//!   [`RunReport`] plus the final architectural state and a
//!   per-segment [`SegmentSpan`] timeline;
//! * instead of polling strings, callers attach [`Observer`]s with
//!   typed hooks (`segment_opened`/`segment_closed`, `verdict`,
//!   `fault_injected`/`fault_detected`, `rollback_started`/
//!   `rollback_completed`, `tick`) that the system drives as the
//!   simulation progresses.
//!
//! # Quickstart
//!
//! ```
//! use meek_core::sim::{EventCounter, Sim};
//! use meek_core::{FaultSite, FaultSpec};
//! use meek_workloads::{parsec3, Workload};
//!
//! let wl = Workload::build(&parsec3()[0], 1);
//! let counter = EventCounter::new();
//! let outcome = Sim::builder(&wl, 12_000)
//!     .little_cores(4)
//!     .faults(vec![FaultSpec { arm_at_commit: 4_000, site: FaultSite::MemAddr, bit: 9 }])
//!     .observe(counter.clone())
//!     .build()
//!     .expect("valid configuration")
//!     .run();
//! assert_eq!(outcome.report.detections.len(), 1);
//! assert_eq!(counter.counts().faults_detected, 1);
//! assert!(outcome.timeline.iter().any(|span| span.pass == Some(false)));
//! ```
//!
//! # Validation
//!
//! ```
//! use meek_core::sim::{BuildError, Sim};
//! use meek_workloads::{parsec3, Workload};
//!
//! let wl = Workload::build(&parsec3()[0], 1);
//! let err = Sim::builder(&wl, 10_000).little_cores(0).build().unwrap_err();
//! assert_eq!(err, BuildError::NoLittleCores);
//! ```

use crate::fault::{DetectionRecord, FaultInjector, FaultSite, FaultSpec};
use crate::report::RunReport;
use crate::system::{cycle_cap, FabricKind, MeekConfig, MeekSystem};
use meek_bigcore::BigCoreConfig;
use meek_fabric::Fabric;
use meek_isa::{ArchState, SparseMemory};
use meek_littlecore::LittleCoreConfig;
use meek_recover::RecoveryPolicy;
use meek_workloads::Workload;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// One structured simulation event, stamped with the big-core cycle it
/// happened on. This is what [`Observer`]s receive and what the JSONL
/// event sink serialises.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// A segment was opened on (assigned to) a checker core.
    SegmentOpened {
        /// Segment id (1-based).
        seg: u32,
        /// Little core chosen by the scheduler.
        checker: usize,
        /// Big-core cycle of the assignment.
        cycle: u64,
    },
    /// A segment's verdict was delivered and its checker released.
    SegmentClosed {
        /// Segment id.
        seg: u32,
        /// `true` = verified clean, `false` = mismatch (a detection).
        pass: bool,
        /// Big-core cycle of the verdict.
        cycle: u64,
    },
    /// An armed fault fired: one bit of forwarded data (or the LSQ
    /// parity window) was actually corrupted.
    FaultInjected {
        /// Corrupted site.
        site: FaultSite,
        /// Segment whose data was corrupted.
        seg: u32,
        /// Big-core cycle of the flip.
        cycle: u64,
    },
    /// A checker (or the parity double-check) reported an injected
    /// fault. The record is a snapshot at detection time — its
    /// `recovery_cycles` annotation lands later, in the final report.
    FaultDetected {
        /// The detection as recorded by the injector.
        record: DetectionRecord,
    },
    /// A recovery rollback began executing (oracle rewind, pipeline
    /// squash, fabric flush).
    RollbackStarted {
        /// Segment being rolled back to (re-executed from).
        seg: u32,
        /// Whether this retry escalated to golden (injection-suppressed)
        /// re-execution.
        golden: bool,
        /// Big-core cycle the rollback fired.
        cycle: u64,
    },
    /// A failure episode closed: the re-executed region verified clean.
    RollbackCompleted {
        /// The re-verified segment that closed the episode.
        seg: u32,
        /// Big-core cycle of the closing verdict.
        cycle: u64,
    },
}

impl SimEvent {
    /// The big-core cycle this event is stamped with.
    pub fn cycle(&self) -> u64 {
        match *self {
            SimEvent::SegmentOpened { cycle, .. }
            | SimEvent::SegmentClosed { cycle, .. }
            | SimEvent::FaultInjected { cycle, .. }
            | SimEvent::RollbackStarted { cycle, .. }
            | SimEvent::RollbackCompleted { cycle, .. } => cycle,
            SimEvent::FaultDetected { ref record } => record.detected_cycle,
        }
    }

    /// Stable snake-case event name (the JSONL `"event"` field).
    pub fn name(&self) -> &'static str {
        match self {
            SimEvent::SegmentOpened { .. } => "segment_opened",
            SimEvent::SegmentClosed { .. } => "segment_closed",
            SimEvent::FaultInjected { .. } => "fault_injected",
            SimEvent::FaultDetected { .. } => "fault_detected",
            SimEvent::RollbackStarted { .. } => "rollback_started",
            SimEvent::RollbackCompleted { .. } => "rollback_completed",
        }
    }
}

/// Renders one event as a flat, stable JSON object (no newline) — the
/// line format of [`JsonlEventSink`] and `meek-campaign --trace`.
pub fn event_json(ev: &SimEvent) -> String {
    match *ev {
        SimEvent::SegmentOpened { seg, checker, cycle } => format!(
            "{{\"event\":\"segment_opened\",\"seg\":{seg},\"checker\":{checker},\
             \"cycle\":{cycle}}}"
        ),
        SimEvent::SegmentClosed { seg, pass, cycle } => format!(
            "{{\"event\":\"segment_closed\",\"seg\":{seg},\"pass\":{pass},\"cycle\":{cycle}}}"
        ),
        SimEvent::FaultInjected { site, seg, cycle } => format!(
            "{{\"event\":\"fault_injected\",\"site\":\"{}\",\"seg\":{seg},\"cycle\":{cycle}}}",
            site.name()
        ),
        SimEvent::FaultDetected { ref record } => format!(
            "{{\"event\":\"fault_detected\",\"site\":\"{}\",\"injected_cycle\":{},\
             \"detected_cycle\":{},\"latency_ns\":{:.3},\"seg\":{}}}",
            record.site.name(),
            record.injected_cycle,
            record.detected_cycle,
            record.latency_ns,
            record.seg
        ),
        SimEvent::RollbackStarted { seg, golden, cycle } => format!(
            "{{\"event\":\"rollback_started\",\"seg\":{seg},\"golden\":{golden},\
             \"cycle\":{cycle}}}"
        ),
        SimEvent::RollbackCompleted { seg, cycle } => {
            format!("{{\"event\":\"rollback_completed\",\"seg\":{seg},\"cycle\":{cycle}}}")
        }
    }
}

/// Typed run instrumentation: the system drives these hooks as the
/// simulation progresses, replacing the old polled debug strings
/// (`debug_state`, `injector_debug`, `debug_little_phases`).
///
/// Every hook has a no-op default — implement only what you need.
/// Observers that want the whole stream (loggers, serialisers) can
/// override [`Observer::event`] instead; its default implementation
/// fans each [`SimEvent`] out to the matching typed hooks
/// ([`SimEvent::SegmentClosed`] drives *both* `verdict` and
/// `segment_closed`).
pub trait Observer: Send {
    /// Catch-all: called once per event, before-the-fact dispatch to
    /// the typed hooks. Override to consume the raw stream.
    fn event(&mut self, ev: &SimEvent) {
        match *ev {
            SimEvent::SegmentOpened { seg, checker, cycle } => {
                self.segment_opened(seg, checker, cycle)
            }
            SimEvent::SegmentClosed { seg, pass, cycle } => {
                self.verdict(seg, pass, cycle);
                self.segment_closed(seg, pass, cycle);
            }
            SimEvent::FaultInjected { site, seg, cycle } => self.fault_injected(site, seg, cycle),
            SimEvent::FaultDetected { ref record } => self.fault_detected(record),
            SimEvent::RollbackStarted { seg, golden, cycle } => {
                self.rollback_started(seg, golden, cycle)
            }
            SimEvent::RollbackCompleted { seg, cycle } => self.rollback_completed(seg, cycle),
        }
    }

    /// A segment was assigned to checker core `checker`.
    fn segment_opened(&mut self, _seg: u32, _checker: usize, _cycle: u64) {}
    /// A segment's verdict was delivered and its checker released.
    fn segment_closed(&mut self, _seg: u32, _pass: bool, _cycle: u64) {}
    /// A segment verdict: `pass == false` is a checker-reported
    /// mismatch. Fired together with [`Observer::segment_closed`].
    fn verdict(&mut self, _seg: u32, _pass: bool, _cycle: u64) {}
    /// An armed fault corrupted forwarded data.
    fn fault_injected(&mut self, _site: FaultSite, _seg: u32, _cycle: u64) {}
    /// An injected fault was detected.
    fn fault_detected(&mut self, _record: &DetectionRecord) {}
    /// A recovery rollback began.
    fn rollback_started(&mut self, _seg: u32, _golden: bool, _cycle: u64) {}
    /// A failure episode closed with a clean re-verification.
    fn rollback_completed(&mut self, _seg: u32, _cycle: u64) {}
    /// One big-core cycle elapsed. Called every cycle — keep it cheap.
    fn tick(&mut self, _cycle: u64) {}
    /// Per-cycle occupancy sample (ROB, fabric backlog), taken right
    /// after the cycle's tick. Only called on cycles for which
    /// [`Observer::wants_sample_at`] returned `true` — keep it cheap.
    fn sample(&mut self, _cycle: u64, _sample: TickSample) {}
    /// The run drained; final report available. Flush buffers here.
    fn finished(&mut self, _report: &RunReport) {}
    /// Whether this observer does anything at all. [`Sim::run`] skips
    /// the whole per-cycle hook path when this returns `false`; the
    /// zero-sized [`NoObserver`] pins it to `false` so unobserved runs
    /// compile the hooks away entirely.
    fn is_enabled(&self) -> bool {
        true
    }
    /// Whether this observer wants a [`TickSample`] for `cycle`.
    /// [`Sim::run`] builds the (ROB + fabric occupancy) sample only on
    /// cycles where some attached observer answers `true`, so stride-N
    /// samplers no longer force per-cycle sample construction. The
    /// conservative default is every cycle.
    fn wants_sample_at(&self, _cycle: u64) -> bool {
        true
    }
}

/// The zero-sized "nobody is watching" observer — the default type
/// parameter of [`Sim`]. Runs built with
/// [`SimBuilder::build_unobserved`] monomorphize against it, so every
/// per-cycle hook (tick, sample construction, event fan-out) is
/// statically dead code instead of an empty dynamic dispatch loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoObserver;

impl Observer for NoObserver {
    fn event(&mut self, _ev: &SimEvent) {}

    fn is_enabled(&self) -> bool {
        false
    }

    fn wants_sample_at(&self, _cycle: u64) -> bool {
        false
    }
}

/// A dynamic collection of boxed observers, driven in attachment
/// order — what [`SimBuilder::build`] monomorphizes [`Sim`] against.
/// This keeps `Box<dyn Observer>` at the construction boundary (CLI
/// front-ends attaching a run-time-chosen mix) while the per-cycle
/// dispatch itself stays a single static call on the set.
#[derive(Default)]
pub struct ObserverSet(Vec<Box<dyn Observer>>);

impl ObserverSet {
    /// Wraps an attachment-ordered list of observers.
    pub fn new(observers: Vec<Box<dyn Observer>>) -> ObserverSet {
        ObserverSet(observers)
    }

    /// Number of attached observers.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no observers are attached.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Observer for ObserverSet {
    fn event(&mut self, ev: &SimEvent) {
        for obs in &mut self.0 {
            obs.event(ev);
        }
    }

    fn tick(&mut self, cycle: u64) {
        for obs in &mut self.0 {
            obs.tick(cycle);
        }
    }

    fn sample(&mut self, cycle: u64, sample: TickSample) {
        for obs in &mut self.0 {
            obs.sample(cycle, sample);
        }
    }

    fn finished(&mut self, report: &RunReport) {
        for obs in &mut self.0 {
            obs.finished(report);
        }
    }

    fn is_enabled(&self) -> bool {
        !self.0.is_empty()
    }

    fn wants_sample_at(&self, cycle: u64) -> bool {
        self.0.iter().any(|obs| obs.wants_sample_at(cycle))
    }
}

/// One cycle's occupancy snapshot, handed to [`Observer::sample`] —
/// the structured source for time-series figures (ROB occupancy and
/// fabric depth over time) and for coverage buckets in the fuzzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickSample {
    /// Instructions resident in the big core's re-order buffer.
    pub rob_occupancy: usize,
    /// Packets queued across the forwarding fabric's DC-buffers.
    pub fabric_depth: usize,
    /// Checker (little) cores currently idle — no segment assigned.
    /// Together with `lsl_occupancy` this is the load signal
    /// runtime-adaptive checker allocation reacts to.
    pub littles_idle: usize,
    /// Load-store-log entries (run-time + status packets awaiting
    /// replay) summed across every checker core.
    pub lsl_occupancy: usize,
}

/// A bounded ring buffer of the most recent [`SimEvent`]s — the
/// structured replacement for the old one-line debug-state strings
/// when diagnosing a stuck or misbehaving run.
///
/// `TraceLog` is a cheap cloneable handle: keep one clone, pass the
/// other to [`SimBuilder::observe`], and read
/// [`TraceLog::snapshot`]/[`TraceLog::render`] after (or during) the
/// run.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    inner: Arc<Mutex<TraceBuf>>,
}

#[derive(Debug, Default)]
struct TraceBuf {
    capacity: usize,
    events: VecDeque<SimEvent>,
    dropped: u64,
}

impl TraceLog {
    /// A ring keeping the last `capacity` events (0 = unbounded).
    pub fn new(capacity: usize) -> TraceLog {
        TraceLog { inner: Arc::new(Mutex::new(TraceBuf { capacity, ..TraceBuf::default() })) }
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<SimEvent> {
        self.inner.lock().expect("trace log lock").events.iter().cloned().collect()
    }

    /// Events evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace log lock").dropped
    }

    /// The retained events rendered one per line — ready for a panic
    /// message or a bug report.
    pub fn render(&self) -> String {
        self.snapshot().iter().map(|ev| event_json(ev) + "\n").collect()
    }
}

impl Observer for TraceLog {
    fn event(&mut self, ev: &SimEvent) {
        let mut buf = self.inner.lock().expect("trace log lock");
        if buf.capacity > 0 && buf.events.len() == buf.capacity {
            buf.events.pop_front();
            buf.dropped += 1;
        }
        buf.events.push_back(ev.clone());
    }

    fn wants_sample_at(&self, _cycle: u64) -> bool {
        false // event-stream only: never consumes TickSamples
    }
}

/// Per-kind event totals (plus elapsed cycles) for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Segment open events (first opens and rollback re-opens).
    pub segments_opened: u64,
    /// Verdicts delivered.
    pub verdicts: u64,
    /// Verdicts that passed.
    pub passes: u64,
    /// Verdicts that failed (detections at segment granularity).
    pub fails: u64,
    /// Corruptions that fired.
    pub faults_injected: u64,
    /// Detections reported.
    pub faults_detected: u64,
    /// Rollbacks executed.
    pub rollbacks_started: u64,
    /// Failure episodes closed clean.
    pub rollbacks_completed: u64,
    /// Big-core cycles observed.
    pub ticks: u64,
}

/// Counts events by kind — a cheap cloneable handle like [`TraceLog`].
#[derive(Clone, Debug, Default)]
pub struct EventCounter {
    inner: Arc<Mutex<EventCounts>>,
}

impl EventCounter {
    /// A zeroed counter.
    pub fn new() -> EventCounter {
        EventCounter::default()
    }

    /// The counts accumulated so far.
    pub fn counts(&self) -> EventCounts {
        *self.inner.lock().expect("event counter lock")
    }
}

impl Observer for EventCounter {
    fn event(&mut self, ev: &SimEvent) {
        let mut c = self.inner.lock().expect("event counter lock");
        match ev {
            SimEvent::SegmentOpened { .. } => c.segments_opened += 1,
            SimEvent::SegmentClosed { pass, .. } => {
                c.verdicts += 1;
                if *pass {
                    c.passes += 1;
                } else {
                    c.fails += 1;
                }
            }
            SimEvent::FaultInjected { .. } => c.faults_injected += 1,
            SimEvent::FaultDetected { .. } => c.faults_detected += 1,
            SimEvent::RollbackStarted { .. } => c.rollbacks_started += 1,
            SimEvent::RollbackCompleted { .. } => c.rollbacks_completed += 1,
        }
    }

    fn tick(&mut self, _cycle: u64) {
        self.inner.lock().expect("event counter lock").ticks += 1;
    }

    fn wants_sample_at(&self, _cycle: u64) -> bool {
        false // counts events and ticks: never consumes TickSamples
    }
}

/// One retained row of a [`SamplingObserver`] time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleRow {
    /// Big-core cycle the sample was taken on.
    pub cycle: u64,
    /// ROB occupancy that cycle.
    pub rob_occupancy: usize,
    /// Fabric backlog (queued packets) that cycle.
    pub fabric_depth: usize,
    /// Idle checker cores that cycle.
    pub littles_idle: usize,
    /// Total LSL backlog across checker cores that cycle.
    pub lsl_occupancy: usize,
}

/// Built-in per-cycle occupancy sampler: records the ROB-occupancy and
/// fabric-depth time series of a run (the ROADMAP's time-series-figure
/// observer, surfaced as `meek-campaign --sample`).
///
/// A cheap cloneable handle like [`TraceLog`]: keep one clone, attach
/// the other with [`SimBuilder::observe`], read the series after the
/// run. A `stride` of `n` keeps every `n`-th cycle (cycle 0 included);
/// 1 keeps everything.
#[derive(Clone, Debug)]
pub struct SamplingObserver {
    inner: Arc<Mutex<Vec<SampleRow>>>,
    stride: u64,
}

impl SamplingObserver {
    /// A sampler keeping every `stride`-th cycle.
    ///
    /// A `stride` of 0 is explicitly clamped to 1 (sample every cycle):
    /// a zero stride has no meaningful grid, and library callers get
    /// the densest series rather than a panic. Front-ends that treat 0
    /// as a user error (the campaign CLI rejects `--sample 0`) must
    /// validate before constructing the observer.
    pub fn new(stride: u64) -> SamplingObserver {
        SamplingObserver { inner: Arc::new(Mutex::new(Vec::new())), stride: stride.max(1) }
    }

    /// The rows retained so far, in cycle order.
    pub fn rows(&self) -> Vec<SampleRow> {
        self.inner.lock().expect("sampling observer lock").clone()
    }

    /// Renders the series as CSV rows
    /// `cycle,rob,fabric_depth,littles_idle,lsl_occupancy` (no
    /// header), each line prefixed with `prefix` verbatim — campaign
    /// shards pass `"workload,shard,"` so a merged file stays
    /// self-describing.
    pub fn render_csv(&self, prefix: &str) -> String {
        let mut out = String::new();
        for r in self.inner.lock().expect("sampling observer lock").iter() {
            out.push_str(&format!(
                "{prefix}{},{},{},{},{}\n",
                r.cycle, r.rob_occupancy, r.fabric_depth, r.littles_idle, r.lsl_occupancy
            ));
        }
        out
    }
}

impl Observer for SamplingObserver {
    fn sample(&mut self, cycle: u64, sample: TickSample) {
        if cycle.is_multiple_of(self.stride) {
            self.inner.lock().expect("sampling observer lock").push(SampleRow {
                cycle,
                rob_occupancy: sample.rob_occupancy,
                fabric_depth: sample.fabric_depth,
                littles_idle: sample.littles_idle,
                lsl_occupancy: sample.lsl_occupancy,
            });
        }
    }

    fn wants_sample_at(&self, cycle: u64) -> bool {
        cycle.is_multiple_of(self.stride)
    }
}

/// A cloneable in-memory byte buffer implementing [`Write`] — pair it
/// with [`JsonlEventSink`] when the serialised events must be read
/// back after the run (the sink itself is consumed by the builder).
#[derive(Clone, Debug, Default)]
pub struct SharedBuf {
    inner: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuf {
    /// An empty shared buffer.
    pub fn new() -> SharedBuf {
        SharedBuf::default()
    }

    /// Takes the accumulated bytes, leaving the buffer empty.
    pub fn take_bytes(&self) -> Vec<u8> {
        std::mem::take(&mut self.inner.lock().expect("shared buf lock"))
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.lock().expect("shared buf lock").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Serialises every event as one JSON line ([`event_json`]) — the
/// observer behind `meek-campaign --trace`. Write errors are latched
/// and re-raised as a panic at [`Observer::finished`] time so a full
/// disk cannot silently truncate a trace.
pub struct JsonlEventSink<W: Write + Send> {
    out: W,
    /// Raw JSON fields (e.g. `"workload":"mcf","shard":3,`) injected
    /// after the opening brace of every line — context for traces that
    /// interleave many runs in one file.
    prefix: String,
    error: Option<io::Error>,
}

impl<W: Write + Send> JsonlEventSink<W> {
    /// A sink writing plain event lines to `out`.
    pub fn new(out: W) -> JsonlEventSink<W> {
        JsonlEventSink::with_prefix(out, String::new())
    }

    /// A sink that splices `prefix` (raw JSON fields, trailing comma
    /// included) into every line after the opening `{`.
    pub fn with_prefix(out: W, prefix: String) -> JsonlEventSink<W> {
        JsonlEventSink { out, prefix, error: None }
    }

    /// Consumes the sink, returning the writer (or the first latched
    /// write error).
    pub fn into_inner(self) -> io::Result<W> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.out),
        }
    }
}

impl<W: Write + Send> Observer for JsonlEventSink<W> {
    fn event(&mut self, ev: &SimEvent) {
        if self.error.is_some() {
            return;
        }
        let line = event_json(ev);
        let r = if self.prefix.is_empty() {
            writeln!(self.out, "{line}")
        } else {
            writeln!(self.out, "{{{}{}", self.prefix, &line[1..])
        };
        if let Err(e) = r {
            self.error = Some(e);
        }
    }

    fn finished(&mut self, _report: &RunReport) {
        if let Some(e) = self.error.take() {
            panic!("event trace lost: {e}");
        }
        if let Err(e) = self.out.flush() {
            panic!("event trace lost: {e}");
        }
    }

    fn wants_sample_at(&self, _cycle: u64) -> bool {
        false // serialises the event stream: never consumes TickSamples
    }
}

/// A rejected [`SimBuilder`] configuration. Every variant is a
/// degenerate combination the old constructors either panicked on or
/// silently mis-simulated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// MEEK needs at least one little (checker) core.
    NoLittleCores,
    /// A run of zero dynamic instructions has no segments to verify.
    ZeroInstructionBudget,
    /// Recovery was enabled with `rollback_depth == 0`: a rollback
    /// with no checkpoint to reach is unexecutable.
    RecoveryWithoutCheckpoints,
    /// Both a [`FabricKind`] and a custom fabric instance were set —
    /// the builder cannot honour both.
    ConflictingFabric,
    /// Both [`SimBuilder::faults`] and [`SimBuilder::injector`] were
    /// set — one fault source per run.
    ConflictingFaultSources,
    /// A fault arms at or past the instruction budget: it could never
    /// fire, and would be misreported as pending.
    FaultBeyondBudget {
        /// The offending arm point.
        arm_at_commit: u64,
        /// The run's dynamic instruction budget.
        budget: u64,
    },
    /// The workload's entry PC is not 4-aligned. RV64 (without the C
    /// extension) fetches 4-byte-aligned words; a misaligned entry can
    /// only come from a mis-assembled or mis-declared image.
    MisalignedEntry {
        /// The offending entry PC.
        entry: u64,
    },
    /// The word at the workload's entry PC does not decode — the image
    /// has no code there (wrong load address, wrong entry metadata), so
    /// a run would trap on its first fetch and be misreported as a
    /// cycle-cap liveness failure.
    EntryNotExecutable {
        /// The entry PC with no decodable instruction.
        entry: u64,
        /// The word found there.
        word: u32,
    },
    /// The workload's declared writable data window overlaps its code
    /// span: stores would self-modify code that every execution way
    /// pre-decoded at build time, silently diverging replay from fetch.
    DataWindowOverlapsCode {
        /// Declared window base.
        data_base: u64,
        /// Declared window size in bytes.
        data_size: u64,
        /// Code span start (the entry PC).
        code_base: u64,
        /// Code span end (one past the last static instruction).
        code_end: u64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NoLittleCores => write!(f, "MEEK needs at least one little core"),
            BuildError::ZeroInstructionBudget => {
                write!(f, "instruction budget must be positive")
            }
            BuildError::RecoveryWithoutCheckpoints => {
                write!(f, "recovery enabled with rollback_depth 0: no checkpoint to roll back to")
            }
            BuildError::ConflictingFabric => {
                write!(f, "both a fabric kind and a custom fabric were configured")
            }
            BuildError::ConflictingFaultSources => {
                write!(f, "both a fault list and a pre-built injector were configured")
            }
            BuildError::FaultBeyondBudget { arm_at_commit, budget } => write!(
                f,
                "fault arms at commit {arm_at_commit}, at or past the {budget}-instruction budget"
            ),
            BuildError::MisalignedEntry { entry } => {
                write!(f, "entry PC {entry:#x} is not 4-aligned")
            }
            BuildError::EntryNotExecutable { entry, word } => write!(
                f,
                "no decodable instruction at entry PC {entry:#x} (found word {word:#010x})"
            ),
            BuildError::DataWindowOverlapsCode { data_base, data_size, code_base, code_end } => {
                write!(
                    f,
                    "data window [{data_base:#x}, {:#x}) overlaps code span \
                     [{code_base:#x}, {code_end:#x})",
                    data_base + data_size
                )
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Checks the configuration-level invariants [`SimBuilder::build`]
/// enforces, without needing a workload. Front-ends that accept a
/// [`MeekConfig`] from outside (e.g. the campaign engine's spec) call
/// this once up front so a degenerate config surfaces as a typed error
/// on the caller's thread instead of a panic on a worker.
///
/// # Errors
///
/// Returns [`BuildError::NoLittleCores`] or
/// [`BuildError::RecoveryWithoutCheckpoints`] for the corresponding
/// degenerate configurations.
pub fn validate_config(cfg: &MeekConfig) -> Result<(), BuildError> {
    if cfg.n_little == 0 {
        return Err(BuildError::NoLittleCores);
    }
    if cfg.recovery.enabled && cfg.recovery.rollback_depth == 0 {
        return Err(BuildError::RecoveryWithoutCheckpoints);
    }
    Ok(())
}

/// Builder for a [`Sim`]: one validated, composable construction path
/// for every MEEK scenario — fabric × recovery × fault matrices
/// included.
pub struct SimBuilder<'a> {
    workload: &'a Workload,
    insts: u64,
    cfg: MeekConfig,
    record_budget_set: bool,
    fabric_kind_set: bool,
    custom_fabric: Option<Box<dyn Fabric + Send>>,
    faults: Option<Vec<FaultSpec>>,
    injector: Option<FaultInjector>,
    headroom: u64,
    observers: Vec<Box<dyn Observer>>,
}

impl<'a> SimBuilder<'a> {
    /// A builder for `insts` dynamic instructions of `workload`, at the
    /// paper's Table II defaults (4 little cores, F2 fabric, recovery
    /// off).
    pub fn new(workload: &'a Workload, insts: u64) -> SimBuilder<'a> {
        SimBuilder {
            workload,
            insts,
            cfg: MeekConfig::default(),
            record_budget_set: false,
            fabric_kind_set: false,
            custom_fabric: None,
            faults: None,
            injector: None,
            headroom: 1,
            observers: Vec::new(),
        }
    }

    /// Replaces the whole system configuration (the campaign engine's
    /// path: its spec carries a prebuilt [`MeekConfig`]). Individual
    /// setters called afterwards still apply on top.
    pub fn config(mut self, cfg: MeekConfig) -> Self {
        self.cfg = cfg;
        self.record_budget_set = true; // the config's budget is explicit
        self
    }

    /// Number of little (checker) cores.
    pub fn little_cores(mut self, n: usize) -> Self {
        self.cfg.n_little = n;
        self
    }

    /// Little-core microarchitecture. Unless overridden, the segment
    /// record budget follows the configured LSL run-time capacity.
    pub fn little_config(mut self, little: LittleCoreConfig) -> Self {
        if !self.record_budget_set {
            self.cfg.seg_record_budget = little.lsl.runtime_capacity as u64;
        }
        self.cfg.little = little;
        self
    }

    /// Big-core microarchitecture.
    pub fn big_config(mut self, big: BigCoreConfig) -> Self {
        self.cfg.big = big;
        self
    }

    /// Interconnect choice (the Fig. 9 ablation axis). Conflicts with
    /// [`SimBuilder::custom_fabric`].
    pub fn fabric(mut self, kind: FabricKind) -> Self {
        self.cfg.fabric = kind;
        self.fabric_kind_set = true;
        self
    }

    /// A caller-built interconnect instance (parameter sweeps beyond
    /// the built-in kinds). Conflicts with [`SimBuilder::fabric`].
    pub fn custom_fabric(mut self, fabric: Box<dyn Fabric + Send>) -> Self {
        self.custom_fabric = Some(fabric);
        self
    }

    /// Run-time records per segment before an RCP is forced.
    pub fn segment_record_budget(mut self, budget: u64) -> Self {
        self.cfg.seg_record_budget = budget;
        self.record_budget_set = true;
        self
    }

    /// Instruction timeout per segment (Table II: 5 000).
    pub fn segment_timeout(mut self, timeout: u64) -> Self {
        self.cfg.seg_timeout = timeout;
        self
    }

    /// Recovery policy (checkpoint/rollback/re-execution knobs).
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.cfg.recovery = policy;
        self
    }

    /// Fault-injection plan. Conflicts with [`SimBuilder::injector`].
    pub fn faults(mut self, faults: Vec<FaultSpec>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// A pre-built injector (e.g. [`FaultInjector::random_campaign`]).
    /// Conflicts with [`SimBuilder::faults`].
    pub fn injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Multiplies the internally derived liveness bound beyond its
    /// default (recovery-enabled runs already get a retry-budget-aware
    /// multiplier — see [`SimBuilder::build`]). Use for runs that
    /// legitimately exceed even that — e.g. stress tests stacking many
    /// failure episodes. The larger of the explicit and derived
    /// multipliers wins.
    pub fn cycle_headroom(mut self, multiplier: u64) -> Self {
        self.headroom = multiplier.max(1);
        self
    }

    /// Attaches an [`Observer`]; may be called repeatedly. Observers
    /// are driven in attachment order.
    pub fn observe(mut self, observer: impl Observer + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Validates the configuration and assembles the system.
    ///
    /// The liveness bound is derived from the instruction budget
    /// ([`cycle_cap`]); recovery-enabled runs automatically widen it by
    /// a retry-budget-aware multiplier (rollback re-execution can
    /// legitimately repeat committed work once per retry, plus the
    /// golden escalation pass), so ordinary recovery scenarios need no
    /// manual [`SimBuilder::cycle_headroom`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`BuildError`] for every degenerate
    /// combination; see the enum's variants.
    pub fn build(self) -> Result<Sim<ObserverSet>, BuildError> {
        let (sys, max_cycles, observers) = self.assemble()?;
        Ok(Sim {
            sys,
            max_cycles,
            observer: ObserverSet::new(observers),
            halt_on_first_detection: false,
        })
    }

    /// Like [`SimBuilder::build`], but monomorphizes the run against
    /// the zero-sized [`NoObserver`]: no boxed observers exist, so the
    /// per-cycle hook path (tick, sample construction, event fan-out)
    /// compiles away entirely. This is the hot path for oracle-style
    /// callers that only need the [`RunOutcome`] — the difftest
    /// cosimulator, fault classification, recovery verification and the
    /// benches.
    ///
    /// # Errors
    ///
    /// Returns the same typed [`BuildError`]s as [`SimBuilder::build`].
    ///
    /// # Panics
    ///
    /// Panics if observers were attached — attaching via
    /// [`SimBuilder::observe`] and then discarding silently would be a
    /// caller bug.
    pub fn build_unobserved(self) -> Result<Sim<NoObserver>, BuildError> {
        let (sys, max_cycles, observers) = self.assemble()?;
        assert!(observers.is_empty(), "observers attached to an unobserved build");
        Ok(Sim { sys, max_cycles, observer: NoObserver, halt_on_first_detection: false })
    }

    /// The shared validation + assembly behind both build flavours.
    #[allow(clippy::type_complexity)]
    fn assemble(self) -> Result<(MeekSystem, u64, Vec<Box<dyn Observer>>), BuildError> {
        if self.insts == 0 {
            return Err(BuildError::ZeroInstructionBudget);
        }
        validate_config(&self.cfg)?;
        // Image-shape validation: degenerate loaded images used to run
        // straight into the cycle-cap liveness panic; reject them with
        // typed errors instead.
        let entry = self.workload.entry();
        if !entry.is_multiple_of(4) {
            return Err(BuildError::MisalignedEntry { entry });
        }
        let entry_word = self.workload.image().peek_inst(entry);
        if meek_isa::decode(entry_word).is_err() {
            return Err(BuildError::EntryNotExecutable { entry, word: entry_word });
        }
        if let Some((data_base, data_size)) = self.workload.data_window() {
            let code_end = entry + 4 * self.workload.static_len as u64;
            if data_base < code_end && data_base + data_size > entry {
                return Err(BuildError::DataWindowOverlapsCode {
                    data_base,
                    data_size,
                    code_base: entry,
                    code_end,
                });
            }
        }
        if self.fabric_kind_set && self.custom_fabric.is_some() {
            return Err(BuildError::ConflictingFabric);
        }
        if self.faults.is_some() && self.injector.is_some() {
            return Err(BuildError::ConflictingFaultSources);
        }
        let latest_arm = match (&self.faults, &self.injector) {
            (Some(faults), _) => faults.iter().map(|f| f.arm_at_commit).max(),
            (None, Some(inj)) => inj.latest_arm(),
            (None, None) => None,
        };
        if let Some(arm) = latest_arm {
            if arm >= self.insts {
                return Err(BuildError::FaultBeyondBudget {
                    arm_at_commit: arm,
                    budget: self.insts,
                });
            }
        }
        let fabric = match self.custom_fabric {
            Some(f) => f,
            None => MeekSystem::default_fabric(&self.cfg),
        };
        let mut sys = MeekSystem::with_fabric(self.cfg, self.workload, self.insts, fabric);
        if let Some(faults) = self.faults {
            sys.set_faults(faults);
        } else if let Some(injector) = self.injector {
            sys.set_injector(injector);
        }
        sys.enable_event_capture();
        // Each failure episode may re-execute committed work once per
        // retry, and golden escalation adds one more pass.
        let recovery = &sys.config().recovery;
        let derived = if recovery.enabled { 2 + recovery.max_retries as u64 } else { 1 };
        let max_cycles = cycle_cap(self.insts).saturating_mul(self.headroom.max(derived));
        Ok((sys, max_cycles, self.observers))
    }
}

/// A validated, ready-to-run simulation, monomorphized over its
/// observer: [`SimBuilder::build`] yields `Sim<ObserverSet>` (dynamic
/// observers at the construction boundary only), and
/// [`SimBuilder::build_unobserved`] yields `Sim<NoObserver>` whose
/// per-cycle hook path is statically dead. Obtain one from
/// [`Sim::builder`]; consume it with [`Sim::run`].
pub struct Sim<O: Observer = NoObserver> {
    sys: MeekSystem,
    max_cycles: u64,
    observer: O,
    halt_on_first_detection: bool,
}

impl<O: Observer> fmt::Debug for Sim<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("max_cycles", &self.max_cycles)
            .field("observed", &self.observer.is_enabled())
            .finish_non_exhaustive()
    }
}

impl Sim<NoObserver> {
    /// Starts a builder — the canonical construction path for every
    /// MEEK simulation.
    pub fn builder(workload: &Workload, insts: u64) -> SimBuilder<'_> {
        SimBuilder::new(workload, insts)
    }
}

impl<O: Observer> Sim<O> {
    /// The derived liveness bound (cycles) this run will panic at.
    pub fn max_cycles(&self) -> u64 {
        self.max_cycles
    }

    /// The underlying system (advanced introspection between manual
    /// ticks; most callers only need [`Sim::run`]).
    pub fn system(&self) -> &MeekSystem {
        &self.sys
    }

    /// Stops [`Sim::run`] as soon as the first fault detection is
    /// recorded instead of draining the system.
    ///
    /// This is a fast path for detect-only oracles that consume nothing
    /// but the first [`DetectionRecord`]: the
    /// record — site, segment, cycles, `latency_ns` — is complete the
    /// moment the injector pushes it, so halting there returns an
    /// identical verdict at a fraction of the simulated cycles. Every
    /// other report field (cycle counts, stall decomposition, pending
    /// verdicts) then reflects the truncated run, so callers that read
    /// beyond `detections` must not use this. Recovery-enabled runs
    /// should not halt either: recovery annotates the detection after
    /// the fact.
    pub fn halt_on_first_detection(mut self) -> Self {
        self.halt_on_first_detection = true;
        self
    }

    /// Runs the simulation to drain, driving every attached
    /// [`Observer`], and returns the structured outcome.
    ///
    /// # Panics
    ///
    /// Panics if the system fails to drain within the derived cycle
    /// bound — a liveness bug, not a measurement artefact.
    pub fn run(mut self) -> RunOutcome {
        let start = self.sys.now();
        let mut timeline: BTreeMap<u32, SegmentSpan> = BTreeMap::new();
        while !self.sys.is_complete() {
            if self.halt_on_first_detection && self.sys.detection_count() > 0 {
                break;
            }
            assert!(
                self.sys.now() - start < self.max_cycles,
                "system failed to drain within {} cycles: {}",
                self.max_cycles,
                self.sys.liveness_context(),
            );
            self.sys.tick();
            let cycle = self.sys.now() - 1;
            for ev in self.sys.take_events() {
                apply_to_timeline(&mut timeline, &ev);
                self.observer.event(&ev);
            }
            if self.observer.is_enabled() {
                self.observer.tick(cycle);
                if self.observer.wants_sample_at(cycle) {
                    let (littles_idle, lsl_occupancy) = self.sys.littlecore_load();
                    let sample = TickSample {
                        rob_occupancy: self.sys.rob_occupancy(),
                        fabric_depth: self.sys.fabric_depth(),
                        littles_idle,
                        lsl_occupancy,
                    };
                    self.observer.sample(cycle, sample);
                }
            }
        }
        if !(self.halt_on_first_detection && self.sys.detection_count() > 0) {
            // Settling end-of-run verdicts only makes sense on a drained
            // system; a halted-on-detection run already has the one
            // record its caller consumes.
            self.sys.resolve_drain();
        }
        let report = self.sys.report();
        self.observer.finished(&report);
        RunOutcome { report, timeline: timeline.into_values().collect(), sys: self.sys }
    }
}

/// One segment's life in the run timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentSpan {
    /// Segment id (1-based).
    pub seg: u32,
    /// The checker core the segment last ran on.
    pub checker: usize,
    /// Cycle of the segment's first open.
    pub opened_cycle: u64,
    /// Cycle of the (final) verdict, if one was delivered.
    pub closed_cycle: Option<u64>,
    /// The final verdict, if delivered.
    pub pass: Option<bool>,
    /// Times the segment was re-opened by recovery rollbacks.
    pub reopens: u32,
}

fn apply_to_timeline(timeline: &mut BTreeMap<u32, SegmentSpan>, ev: &SimEvent) {
    match *ev {
        SimEvent::SegmentOpened { seg, checker, cycle } => {
            timeline
                .entry(seg)
                .and_modify(|span| {
                    span.checker = checker;
                    span.reopens += 1;
                    // A re-opened segment's earlier verdict was voided.
                    span.closed_cycle = None;
                    span.pass = None;
                })
                .or_insert(SegmentSpan {
                    seg,
                    checker,
                    opened_cycle: cycle,
                    closed_cycle: None,
                    pass: None,
                    reopens: 0,
                });
        }
        SimEvent::SegmentClosed { seg, pass, cycle } => {
            if let Some(span) = timeline.get_mut(&seg) {
                span.closed_cycle = Some(cycle);
                span.pass = Some(pass);
            }
        }
        _ => {}
    }
}

/// The structured result of one [`Sim::run`]: the familiar report plus
/// final architectural state and the per-segment timeline.
pub struct RunOutcome {
    /// The run report (cycles, stalls, detections, recovery metrics).
    pub report: RunReport,
    /// Per-segment spans in segment order: open/close cycles, verdict,
    /// checker assignment, rollback re-opens.
    pub timeline: Vec<SegmentSpan>,
    sys: MeekSystem,
}

impl RunOutcome {
    /// Final architectural state of the application (the functional
    /// oracle's registers, PC and CSRs). After a recovered run this
    /// must equal a fault-free golden execution.
    pub fn final_state(&self) -> &ArchState {
        self.sys.final_state()
    }

    /// Final functional memory of the application (same oracle role as
    /// [`RunOutcome::final_state`]).
    pub fn final_memory(&self) -> &SparseMemory {
        self.sys.final_memory()
    }

    /// The drained system, for introspection the report does not cover.
    pub fn system(&self) -> &MeekSystem {
        &self.sys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meek_fabric::{F2Config, F2};
    use meek_workloads::parsec3;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_workload() -> Workload {
        Workload::build(&parsec3()[0], 11)
    }

    #[test]
    fn zero_little_cores_is_a_typed_error() {
        let wl = small_workload();
        let err = Sim::builder(&wl, 1_000).little_cores(0).build().unwrap_err();
        assert_eq!(err, BuildError::NoLittleCores);
        assert!(err.to_string().contains("little core"));
    }

    #[test]
    fn zero_instruction_budget_is_a_typed_error() {
        let wl = small_workload();
        let err = Sim::builder(&wl, 0).build().unwrap_err();
        assert_eq!(err, BuildError::ZeroInstructionBudget);
    }

    #[test]
    fn recovery_without_checkpoints_is_a_typed_error() {
        let wl = small_workload();
        let policy = RecoveryPolicy { rollback_depth: 0, ..RecoveryPolicy::enabled() };
        let err = Sim::builder(&wl, 1_000).recovery(policy).build().unwrap_err();
        assert_eq!(err, BuildError::RecoveryWithoutCheckpoints);
        // Depth 0 is fine while recovery is off (the knob is inert).
        let policy = RecoveryPolicy { rollback_depth: 0, ..RecoveryPolicy::default() };
        assert!(Sim::builder(&wl, 1_000).recovery(policy).build().is_ok());
    }

    #[test]
    fn conflicting_fabric_settings_are_a_typed_error() {
        let wl = small_workload();
        let err = Sim::builder(&wl, 1_000)
            .fabric(FabricKind::Axi)
            .custom_fabric(Box::new(F2::new(F2Config::default())))
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::ConflictingFabric);
        // Each alone is fine.
        assert!(Sim::builder(&wl, 1_000).fabric(FabricKind::Axi).build().is_ok());
        assert!(Sim::builder(&wl, 1_000)
            .custom_fabric(Box::new(F2::new(F2Config::default())))
            .build()
            .is_ok());
    }

    #[test]
    fn fault_beyond_the_budget_is_a_typed_error() {
        let wl = small_workload();
        let spec = FaultSpec { arm_at_commit: 1_000, site: FaultSite::MemAddr, bit: 1 };
        let err = Sim::builder(&wl, 1_000).faults(vec![spec]).build().unwrap_err();
        assert_eq!(err, BuildError::FaultBeyondBudget { arm_at_commit: 1_000, budget: 1_000 });
        // The same guard applies to pre-built injectors.
        let inj = FaultInjector::new(vec![spec]);
        let err = Sim::builder(&wl, 1_000).injector(inj).build().unwrap_err();
        assert!(matches!(err, BuildError::FaultBeyondBudget { .. }));
        // One instruction of slack makes it valid.
        assert!(Sim::builder(&wl, 1_001).faults(vec![spec]).build().is_ok());
    }

    #[test]
    fn conflicting_fault_sources_are_a_typed_error() {
        let wl = small_workload();
        let spec = FaultSpec { arm_at_commit: 10, site: FaultSite::MemData, bit: 1 };
        let mut rng = SmallRng::seed_from_u64(1);
        let err = Sim::builder(&wl, 1_000)
            .faults(vec![spec])
            .injector(FaultInjector::random_campaign(3, 500, &mut rng))
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::ConflictingFaultSources);
    }

    /// A tiny hand-built loaded image: one `addi` at `entry`, used by the
    /// image-shape rejection tests below.
    fn image_workload(entry: u64) -> Workload {
        use meek_isa::inst::AluImmOp;
        use meek_isa::{encode, Inst, Reg};
        let mut image = SparseMemory::new();
        let addi = encode(&Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X1, rs1: Reg::X0, imm: 1 });
        image.load_program(entry & !3, &[addi, addi]);
        Workload::from_image("image-test", image, entry, (entry & !3) + 8, 2, ArchState::new(entry))
    }

    #[test]
    fn misaligned_entry_is_a_typed_error() {
        let wl = image_workload(0x1002);
        let err = Sim::builder(&wl, 1_000).build().unwrap_err();
        assert_eq!(err, BuildError::MisalignedEntry { entry: 0x1002 });
        assert!(err.to_string().contains("4-aligned"));
    }

    #[test]
    fn undecodable_entry_word_is_a_typed_error() {
        // An image with nothing loaded at the entry PC reads back as an
        // all-zero word, which is not a valid RV64 instruction.
        let wl = Workload::from_image(
            "empty-entry",
            SparseMemory::new(),
            0x4000,
            0x4008,
            2,
            ArchState::new(0x4000),
        );
        let err = Sim::builder(&wl, 1_000).build().unwrap_err();
        assert_eq!(err, BuildError::EntryNotExecutable { entry: 0x4000, word: 0 });
        assert!(err.to_string().contains("entry PC"));
    }

    #[test]
    fn data_window_overlapping_code_is_a_typed_error() {
        // Code span is [0x1000, 0x1008); a window starting mid-span must
        // be rejected, while one starting at the span end is fine.
        let wl = image_workload(0x1000).with_data_window(0x1004, 0x100);
        let err = Sim::builder(&wl, 1_000).build().unwrap_err();
        assert_eq!(
            err,
            BuildError::DataWindowOverlapsCode {
                data_base: 0x1004,
                data_size: 0x100,
                code_base: 0x1000,
                code_end: 0x1008,
            }
        );
        assert!(err.to_string().contains("overlaps code"));
        let wl = image_workload(0x1000).with_data_window(0x1008, 0x100);
        assert!(Sim::builder(&wl, 1_000).build().is_ok());
    }

    #[test]
    fn clean_run_produces_a_consistent_timeline() {
        let wl = small_workload();
        let outcome = Sim::builder(&wl, 10_000).build().expect("valid").run();
        assert_eq!(outcome.report.failed_segments, 0);
        assert_eq!(outcome.timeline.len() as u64, outcome.report.verified_segments);
        let mut prev = 0;
        for span in &outcome.timeline {
            assert_eq!(span.seg, prev + 1, "timeline is dense in segment order");
            prev = span.seg;
            assert_eq!(span.pass, Some(true));
            assert_eq!(span.reopens, 0);
            assert!(span.closed_cycle.is_some_and(|c| c > span.opened_cycle));
            assert!(span.checker < 4);
        }
    }

    #[test]
    fn observers_see_the_fault_lifecycle() {
        let wl = small_workload();
        let counter = EventCounter::new();
        let trace = TraceLog::new(0);
        let outcome = Sim::builder(&wl, 12_000)
            .faults(vec![FaultSpec { arm_at_commit: 4_000, site: FaultSite::MemAddr, bit: 9 }])
            .observe(counter.clone())
            .observe(trace.clone())
            .build()
            .expect("valid")
            .run();
        assert_eq!(outcome.report.detections.len(), 1);
        let c = counter.counts();
        assert_eq!(c.faults_injected, 1);
        assert_eq!(c.faults_detected, 1);
        assert_eq!(c.fails, 1);
        assert_eq!(c.verdicts, c.passes + c.fails);
        assert_eq!(c.segments_opened, c.verdicts, "every opened segment concluded");
        assert_eq!(c.ticks, outcome.report.cycles);
        // The trace carries the same story in order.
        let events = trace.snapshot();
        let injected = events
            .iter()
            .position(|e| matches!(e, SimEvent::FaultInjected { .. }))
            .expect("injection logged");
        let detected = events
            .iter()
            .position(|e| matches!(e, SimEvent::FaultDetected { .. }))
            .expect("detection logged");
        assert!(injected < detected);
        assert!(events.windows(2).all(|w| w[0].cycle() <= w[1].cycle()), "cycle-ordered");
        // The failed segment shows in the timeline.
        let failed: Vec<_> = outcome.timeline.iter().filter(|s| s.pass == Some(false)).collect();
        assert_eq!(failed.len() as u64, outcome.report.failed_segments);
    }

    #[test]
    fn halted_run_preserves_the_first_detection_record() {
        // The detect-only fast path must surface the exact detection
        // record the drained run would — site, cycles, latency — while
        // simulating strictly fewer (or equal) cycles.
        let wl = small_workload();
        let spec = FaultSpec { arm_at_commit: 4_000, site: FaultSite::MemAddr, bit: 9 };
        let full = Sim::builder(&wl, 12_000)
            .faults(vec![spec])
            .build_unobserved()
            .expect("valid")
            .run()
            .report;
        let halted = Sim::builder(&wl, 12_000)
            .faults(vec![spec])
            .build_unobserved()
            .expect("valid")
            .halt_on_first_detection()
            .run()
            .report;
        assert_eq!(full.detections.len(), 1);
        assert_eq!(halted.detections.first(), full.detections.first());
        assert!(halted.cycles <= full.cycles, "{} > {}", halted.cycles, full.cycles);
    }

    #[test]
    fn recovery_run_emits_rollback_events_and_reopens() {
        let wl = small_workload();
        let counter = EventCounter::new();
        let outcome = Sim::builder(&wl, 12_000)
            .recovery(RecoveryPolicy::enabled())
            .faults(vec![FaultSpec { arm_at_commit: 4_000, site: FaultSite::MemAddr, bit: 9 }])
            .observe(counter.clone())
            .build()
            .expect("valid")
            .run();
        assert_eq!(outcome.report.recovery.rollbacks, 1);
        let c = counter.counts();
        assert_eq!(c.rollbacks_started, 1);
        assert_eq!(c.rollbacks_completed, 1);
        assert!(
            outcome.timeline.iter().any(|s| s.reopens > 0),
            "a rollback must re-open its target segment"
        );
        // Re-opened segments end verified: recovery re-checked them.
        for span in &outcome.timeline {
            assert_eq!(span.pass, Some(true), "segment {} unverified after recovery", span.seg);
        }
    }

    #[test]
    fn jsonl_sink_serialises_the_stream() {
        let wl = small_workload();
        let buf = SharedBuf::new();
        let sink = JsonlEventSink::with_prefix(buf.clone(), "\"shard\":7,".to_string());
        let outcome = Sim::builder(&wl, 6_000)
            .faults(vec![FaultSpec { arm_at_commit: 2_000, site: FaultSite::MemData, bit: 3 }])
            .observe(sink)
            .build()
            .expect("valid")
            .run();
        let text = String::from_utf8(buf.take_bytes()).expect("utf8");
        assert!(!text.is_empty());
        for line in text.lines() {
            assert!(line.starts_with("{\"shard\":7,\"event\":\""), "bad line: {line}");
            assert!(line.ends_with('}'));
        }
        let opened = text.matches("\"event\":\"segment_opened\"").count() as u64;
        assert_eq!(opened, outcome.report.verified_segments + outcome.report.failed_segments);
        assert_eq!(text.matches("\"event\":\"fault_injected\"").count(), 1);
    }

    #[test]
    fn trace_log_ring_evicts_oldest() {
        let wl = small_workload();
        let trace = TraceLog::new(4);
        let outcome =
            Sim::builder(&wl, 10_000).observe(trace.clone()).build().expect("valid").run();
        let events = trace.snapshot();
        assert_eq!(events.len(), 4);
        assert!(trace.dropped() > 0);
        // The tail of the run: the last event is a clean verdict
        // (segments can conclude out of order across checkers, so it
        // need not be the highest-numbered segment).
        match events.last().expect("non-empty") {
            SimEvent::SegmentClosed { seg, pass: true, .. } => {
                assert!(*seg as u64 <= outcome.report.verified_segments);
            }
            other => panic!("unexpected tail event {other:?}"),
        }
        assert_eq!(trace.render().lines().count(), 4);
    }

    #[test]
    fn sampling_observer_records_the_occupancy_time_series() {
        let wl = small_workload();
        let sampler = SamplingObserver::new(8);
        let outcome =
            Sim::builder(&wl, 10_000).observe(sampler.clone()).build().expect("valid").run();
        let rows = sampler.rows();
        assert_eq!(rows.len() as u64, outcome.report.cycles.div_ceil(8));
        assert_eq!(rows[0].cycle, 0);
        assert!(rows.windows(2).all(|w| w[1].cycle == w[0].cycle + 8), "stride-8 grid");
        assert!(rows.iter().any(|r| r.rob_occupancy > 0), "the ROB fills during the run");
        assert!(rows.iter().any(|r| r.fabric_depth > 0), "forwarding traffic must appear");
        assert!(rows.iter().any(|r| r.lsl_occupancy > 0), "checker LSLs must fill");
        assert!(
            rows.iter().any(|r| r.littles_idle < MeekConfig::default().n_little),
            "some sample must catch a busy checker"
        );
        let csv = sampler.render_csv("mcf,3,");
        assert_eq!(csv.lines().count(), rows.len());
        assert!(csv.starts_with("mcf,3,0,"), "prefix and cycle lead each row: {csv}");
        assert!(
            csv.lines().all(|l| l.split(',').count() == 7),
            "prefix + cycle,rob,fabric,idle,lsl on every row: {csv}"
        );
        // A stride-1 sampler sees every cycle.
        let dense = SamplingObserver::new(1);
        let outcome = Sim::builder(&wl, 5_000).observe(dense.clone()).build().expect("valid").run();
        assert_eq!(dense.rows().len() as u64, outcome.report.cycles);
    }

    #[test]
    fn custom_fabric_runs_and_headroom_scales_the_cap() {
        let wl = small_workload();
        let sim = Sim::builder(&wl, 5_000)
            .custom_fabric(Box::new(F2::new(F2Config::default())))
            .cycle_headroom(3)
            .build()
            .expect("valid");
        assert_eq!(sim.max_cycles(), 3 * cycle_cap(5_000));
        let outcome = sim.run();
        assert_eq!(outcome.report.failed_segments, 0);
        assert_eq!(outcome.report.committed, 5_000);
    }

    #[test]
    fn recovery_widens_the_derived_cap_automatically() {
        let wl = small_workload();
        let policy = RecoveryPolicy::enabled(); // max_retries 3
        let sim = Sim::builder(&wl, 5_000).recovery(policy).build().expect("valid");
        assert_eq!(sim.max_cycles(), (2 + 3) * cycle_cap(5_000));
        // An explicit larger headroom still wins.
        let sim =
            Sim::builder(&wl, 5_000).recovery(policy).cycle_headroom(20).build().expect("valid");
        assert_eq!(sim.max_cycles(), 20 * cycle_cap(5_000));
    }

    #[test]
    fn sim_is_send() {
        // Campaign workers build and run sims on worker threads.
        fn assert_send<T: Send>() {}
        assert_send::<Sim>();
        assert_send::<Sim<ObserverSet>>();
        assert_send::<RunOutcome>();
        assert_send::<SimEvent>();
        assert_send::<TraceLog>();
        assert_send::<EventCounter>();
        assert_send::<JsonlEventSink<SharedBuf>>();
    }

    #[test]
    fn unobserved_build_matches_observed_build() {
        let wl = small_workload();
        let observed = Sim::builder(&wl, 10_000).build().expect("valid").run();
        let unobserved = Sim::builder(&wl, 10_000).build_unobserved().expect("valid").run();
        assert_eq!(observed.report.cycles, unobserved.report.cycles);
        assert_eq!(observed.report.committed, unobserved.report.committed);
        assert_eq!(observed.report.verified_segments, unobserved.report.verified_segments);
        assert_eq!(observed.report.failed_segments, unobserved.report.failed_segments);
        assert_eq!(observed.final_state().checkpoint(), unobserved.final_state().checkpoint());
        assert_eq!(observed.timeline.len(), unobserved.timeline.len());
    }

    #[test]
    #[should_panic(expected = "observers attached")]
    fn unobserved_build_with_observers_panics() {
        let wl = small_workload();
        let _ = Sim::builder(&wl, 1_000).observe(EventCounter::new()).build_unobserved();
    }

    /// An observer that declines sampling and treats any delivered
    /// sample as a bug — the regression guard for the hoisted
    /// "anyone sampling this cycle?" check.
    #[derive(Clone, Default)]
    struct RefusesSamples {
        ticks: Arc<Mutex<u64>>,
    }

    impl Observer for RefusesSamples {
        fn tick(&mut self, _cycle: u64) {
            *self.ticks.lock().expect("tick counter lock") += 1;
        }

        fn sample(&mut self, cycle: u64, _sample: TickSample) {
            panic!("TickSample built on cycle {cycle} although nobody wants samples");
        }

        fn wants_sample_at(&self, _cycle: u64) -> bool {
            false
        }
    }

    #[test]
    fn sample_path_is_dead_when_no_observer_wants_samples() {
        let wl = small_workload();
        let obs = RefusesSamples::default();
        let outcome = Sim::builder(&wl, 5_000).observe(obs.clone()).build().expect("valid").run();
        // tick still fires every cycle; the sample path never did.
        assert_eq!(*obs.ticks.lock().expect("tick counter lock"), outcome.report.cycles);
        // The zero-sized unobserved path reports itself hook-free.
        assert!(!NoObserver.is_enabled());
        assert!(!NoObserver.wants_sample_at(0));
        assert!(!ObserverSet::default().is_enabled());
    }

    #[test]
    fn sampling_stride_zero_is_clamped_to_one() {
        // The documented contract: stride 0 samples every cycle, exactly
        // like stride 1 (the campaign CLI rejects 0 before getting here).
        let sampler = SamplingObserver::new(0);
        assert!(sampler.wants_sample_at(0));
        assert!(sampler.wants_sample_at(1));
        assert!(sampler.wants_sample_at(7));
        let wl = small_workload();
        let outcome =
            Sim::builder(&wl, 3_000).observe(sampler.clone()).build().expect("valid").run();
        assert_eq!(sampler.rows().len() as u64, outcome.report.cycles);
    }

    #[test]
    fn event_json_is_flat_and_stable() {
        assert_eq!(
            event_json(&SimEvent::SegmentOpened { seg: 3, checker: 1, cycle: 99 }),
            "{\"event\":\"segment_opened\",\"seg\":3,\"checker\":1,\"cycle\":99}"
        );
        assert_eq!(
            event_json(&SimEvent::SegmentClosed { seg: 3, pass: false, cycle: 120 }),
            "{\"event\":\"segment_closed\",\"seg\":3,\"pass\":false,\"cycle\":120}"
        );
        assert_eq!(
            event_json(&SimEvent::FaultInjected { site: FaultSite::MemAddr, seg: 2, cycle: 7 }),
            "{\"event\":\"fault_injected\",\"site\":\"mem_addr\",\"seg\":2,\"cycle\":7}"
        );
        let rec = DetectionRecord {
            site: FaultSite::RcpRegister,
            injected_cycle: 10,
            detected_cycle: 42,
            latency_ns: 10.0,
            seg: 2,
            recovery_cycles: None,
        };
        assert_eq!(
            event_json(&SimEvent::FaultDetected { record: rec }),
            "{\"event\":\"fault_detected\",\"site\":\"rcp_register\",\"injected_cycle\":10,\
             \"detected_cycle\":42,\"latency_ns\":10.000,\"seg\":2}"
        );
        assert_eq!(
            event_json(&SimEvent::RollbackStarted { seg: 5, golden: true, cycle: 1 }),
            "{\"event\":\"rollback_started\",\"seg\":5,\"golden\":true,\"cycle\":1}"
        );
        assert_eq!(
            event_json(&SimEvent::RollbackCompleted { seg: 5, cycle: 2 }),
            "{\"event\":\"rollback_completed\",\"seg\":5,\"cycle\":2}"
        );
    }
}
