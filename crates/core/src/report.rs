//! Run reports: everything the experiment harnesses need to regenerate
//! the paper's figures.

use crate::fault::{DetectionRecord, MaskRecord};
use meek_bigcore::BigCoreStats;
use meek_fabric::FabricStats;
use meek_littlecore::LittleCoreStats;
use meek_recover::RecoveryReport;

/// Commit-stall decomposition (Fig. 9's three components).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Cycles stalled absorbing extracted data into the DC-Buffers.
    pub data_collect: u64,
    /// Cycles stalled on interconnect bandwidth.
    pub data_forward: u64,
    /// Cycles stalled waiting for little-core capacity.
    pub little_core: u64,
}

impl StallBreakdown {
    /// Total MEEK-induced stall cycles.
    pub fn total(&self) -> u64 {
        self.data_collect + self.data_forward + self.little_core
    }

    /// Splits a `total_overhead` (in slowdown terms, e.g. 0.05 = 5%)
    /// proportionally to the three stall categories — used by the
    /// Fig. 9 harness to draw the stacked decomposition.
    pub fn proportions(&self) -> (f64, f64, f64) {
        let t = self.total().max(1) as f64;
        (self.data_collect as f64 / t, self.data_forward as f64 / t, self.little_core as f64 / t)
    }
}

/// The result of one MEEK system run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Big-core cycles simulated until full drain (application commit
    /// plus the checker tail).
    pub cycles: u64,
    /// Big-core cycles until the application itself finished committing
    /// — the paper's slowdown denominator measures application
    /// completion; outstanding checker work continues in the background.
    pub app_cycles: u64,
    /// Wall-clock nanoseconds (at 3.2 GHz).
    pub ns: f64,
    /// Instructions committed by the big core.
    pub committed: u64,
    /// Big-core counters.
    pub big: BigCoreStats,
    /// Fabric counters.
    pub fabric: FabricStats,
    /// Per-little-core counters.
    pub littles: Vec<LittleCoreStats>,
    /// Segments that verified clean.
    pub verified_segments: u64,
    /// Segments that failed verification (detections).
    pub failed_segments: u64,
    /// Stall decomposition.
    pub stalls: StallBreakdown,
    /// Fault detections recorded by the injector.
    pub detections: Vec<DetectionRecord>,
    /// Injected faults whose candidate segments all verified clean (the
    /// flipped bit was architecturally dead). Count of
    /// [`RunReport::masked_faults`], kept as a plain number for the
    /// harnesses that only tally.
    pub missed_faults: u64,
    /// The masked faults themselves, with the clean pre-flip field each
    /// corruption replaced — enough for an external golden re-run to
    /// prove every mask benign (or expose it as an escape).
    pub masked_faults: Vec<MaskRecord>,
    /// Injected faults with *no* verdict when the run drained: still
    /// queued, armed but never fired, or awaiting a verdict that cannot
    /// come. Disjoint from both detections and masks.
    pub pending_faults: usize,
    /// RCPs taken.
    pub rcps: u64,
    /// Recovery-subsystem metrics (all-zero in detect-only runs):
    /// rollbacks, recovery latency, re-executed instructions, and the
    /// checkpoint/undo-log storage high-water mark.
    pub recovery: RecoveryReport,
}

impl RunReport {
    /// Slowdown relative to a vanilla (checking-disabled) run of the
    /// same workload: application completion time, as the paper measures
    /// it (backpressure stalls are included; the final segments' checker
    /// tail proceeds in the background).
    pub fn slowdown_vs(&self, vanilla_cycles: u64) -> f64 {
        self.app_cycles as f64 / vanilla_cycles as f64
    }

    /// Mean detection latency in nanoseconds (`None` if no detections).
    pub fn mean_detection_ns(&self) -> Option<f64> {
        if self.detections.is_empty() {
            return None;
        }
        Some(
            self.detections.iter().map(|d| d.latency_ns).sum::<f64>()
                / self.detections.len() as f64,
        )
    }

    /// Worst-case detection latency in nanoseconds.
    pub fn max_detection_ns(&self) -> Option<f64> {
        self.detections
            .iter()
            .map(|d| d.latency_ns)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }
}

/// Geometric mean of a slice of positive values (used for the paper's
/// geomean rows).
///
/// # Panics
///
/// Panics if `values` is empty or contains a non-positive value.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_breakdown_totals() {
        let s = StallBreakdown { data_collect: 10, data_forward: 30, little_core: 60 };
        assert_eq!(s.total(), 100);
        let (c, f, l) = s.proportions();
        assert!((c - 0.1).abs() < 1e-12);
        assert!((f - 0.3).abs() < 1e-12);
        assert!((l - 0.6).abs() < 1e-12);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.1]) - 1.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "geomean of empty slice")]
    fn geomean_empty_panics() {
        let _ = geomean(&[]);
    }
}
