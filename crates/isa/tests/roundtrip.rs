//! Property tests: encode/decode roundtrip over the full instruction
//! space, plus executor invariants.

use meek_isa::inst::{
    AluImmOp, AluOp, BranchOp, CsrOp, FpCmpOp, FpOp, Inst, LoadOp, MulDivOp, StoreOp,
};
use meek_isa::meek::MeekOp;
use meek_isa::{decode, encode, exec, ArchState, FReg, Reg, SparseMemory};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::from_index)
}

fn any_freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(FReg::new)
}

fn i_imm() -> impl Strategy<Value = i32> {
    -2048i32..=2047
}

fn b_imm() -> impl Strategy<Value = i32> {
    (-2048i32..=2047).prop_map(|x| x * 2)
}

fn j_imm() -> impl Strategy<Value = i32> {
    (-(1i32 << 19)..(1 << 19)).prop_map(|x| x * 2)
}

prop_compose! {
    fn any_alu()(op in prop_oneof![
        Just(AluOp::Add), Just(AluOp::Sub), Just(AluOp::Sll), Just(AluOp::Slt),
        Just(AluOp::Sltu), Just(AluOp::Xor), Just(AluOp::Srl), Just(AluOp::Sra),
        Just(AluOp::Or), Just(AluOp::And), Just(AluOp::Addw), Just(AluOp::Subw),
        Just(AluOp::Sllw), Just(AluOp::Srlw), Just(AluOp::Sraw)
    ], rd in any_reg(), rs1 in any_reg(), rs2 in any_reg()) -> Inst {
        Inst::Alu { op, rd, rs1, rs2 }
    }
}

fn any_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (any_reg(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (any_reg(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, imm)| Inst::Auipc { rd, imm }),
        (any_reg(), j_imm()).prop_map(|(rd, offset)| Inst::Jal { rd, offset }),
        (any_reg(), any_reg(), i_imm()).prop_map(|(rd, rs1, offset)| Inst::Jalr {
            rd,
            rs1,
            offset
        }),
        (
            prop_oneof![
                Just(BranchOp::Beq),
                Just(BranchOp::Bne),
                Just(BranchOp::Blt),
                Just(BranchOp::Bge),
                Just(BranchOp::Bltu),
                Just(BranchOp::Bgeu)
            ],
            any_reg(),
            any_reg(),
            b_imm()
        )
            .prop_map(|(op, rs1, rs2, offset)| Inst::Branch { op, rs1, rs2, offset }),
        (
            prop_oneof![
                Just(LoadOp::Lb),
                Just(LoadOp::Lh),
                Just(LoadOp::Lw),
                Just(LoadOp::Ld),
                Just(LoadOp::Lbu),
                Just(LoadOp::Lhu),
                Just(LoadOp::Lwu)
            ],
            any_reg(),
            any_reg(),
            i_imm()
        )
            .prop_map(|(op, rd, rs1, offset)| Inst::Load { op, rd, rs1, offset }),
        (
            prop_oneof![Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw), Just(StoreOp::Sd)],
            any_reg(),
            any_reg(),
            i_imm()
        )
            .prop_map(|(op, rs1, rs2, offset)| Inst::Store { op, rs1, rs2, offset }),
        (
            prop_oneof![
                Just(AluImmOp::Addi),
                Just(AluImmOp::Slti),
                Just(AluImmOp::Sltiu),
                Just(AluImmOp::Xori),
                Just(AluImmOp::Ori),
                Just(AluImmOp::Andi),
                Just(AluImmOp::Addiw)
            ],
            any_reg(),
            any_reg(),
            i_imm()
        )
            .prop_map(|(op, rd, rs1, imm)| Inst::AluImm { op, rd, rs1, imm }),
        (
            prop_oneof![Just(AluImmOp::Slli), Just(AluImmOp::Srli), Just(AluImmOp::Srai)],
            any_reg(),
            any_reg(),
            0i32..64
        )
            .prop_map(|(op, rd, rs1, imm)| Inst::AluImm { op, rd, rs1, imm }),
        (
            prop_oneof![Just(AluImmOp::Slliw), Just(AluImmOp::Srliw), Just(AluImmOp::Sraiw)],
            any_reg(),
            any_reg(),
            0i32..32
        )
            .prop_map(|(op, rd, rs1, imm)| Inst::AluImm { op, rd, rs1, imm }),
        any_alu(),
        (
            prop_oneof![
                Just(MulDivOp::Mul),
                Just(MulDivOp::Mulh),
                Just(MulDivOp::Mulhsu),
                Just(MulDivOp::Mulhu),
                Just(MulDivOp::Div),
                Just(MulDivOp::Divu),
                Just(MulDivOp::Rem),
                Just(MulDivOp::Remu),
                Just(MulDivOp::Mulw),
                Just(MulDivOp::Divw),
                Just(MulDivOp::Divuw),
                Just(MulDivOp::Remw),
                Just(MulDivOp::Remuw)
            ],
            any_reg(),
            any_reg(),
            any_reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Inst::MulDiv { op, rd, rs1, rs2 }),
        (any_freg(), any_reg(), i_imm()).prop_map(|(rd, rs1, offset)| Inst::Fld {
            rd,
            rs1,
            offset
        }),
        (any_reg(), any_freg(), i_imm()).prop_map(|(rs1, rs2, offset)| Inst::Fsd {
            rs1,
            rs2,
            offset
        }),
        (
            prop_oneof![
                Just(FpOp::FaddD),
                Just(FpOp::FsubD),
                Just(FpOp::FmulD),
                Just(FpOp::FdivD),
                Just(FpOp::FsgnjD),
                Just(FpOp::FminD),
                Just(FpOp::FmaxD)
            ],
            any_freg(),
            any_freg(),
            any_freg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Inst::Fp { op, rd, rs1, rs2 }),
        // FSQRT canonically carries rs2 == rs1.
        (any_freg(), any_freg()).prop_map(|(rd, rs1)| Inst::Fp {
            op: FpOp::FsqrtD,
            rd,
            rs1,
            rs2: rs1
        }),
        (
            prop_oneof![Just(FpCmpOp::FeqD), Just(FpCmpOp::FltD), Just(FpCmpOp::FleD)],
            any_reg(),
            any_freg(),
            any_freg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Inst::FpCmp { op, rd, rs1, rs2 }),
        (any_freg(), any_freg(), any_freg(), any_freg())
            .prop_map(|(rd, rs1, rs2, rs3)| Inst::FmaddD { rd, rs1, rs2, rs3 }),
        (any_freg(), any_reg()).prop_map(|(rd, rs1)| Inst::FcvtDL { rd, rs1 }),
        (any_reg(), any_freg()).prop_map(|(rd, rs1)| Inst::FcvtLD { rd, rs1 }),
        (any_reg(), any_freg()).prop_map(|(rd, rs1)| Inst::FmvXD { rd, rs1 }),
        (any_freg(), any_reg()).prop_map(|(rd, rs1)| Inst::FmvDX { rd, rs1 }),
        (
            prop_oneof![
                Just(CsrOp::Rw),
                Just(CsrOp::Rs),
                Just(CsrOp::Rc),
                Just(CsrOp::Rwi),
                Just(CsrOp::Rsi),
                Just(CsrOp::Rci)
            ],
            any_reg(),
            any_reg(),
            0u16..4096
        )
            .prop_map(|(op, rd, rs1, csr)| Inst::Csr { op, rd, rs1, csr }),
        Just(Inst::Fence),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
        (any_reg(), any_reg()).prop_map(|(rs1, rs2)| Inst::Meek(MeekOp::BHook { rs1, rs2 })),
        any_reg().prop_map(|rs1| Inst::Meek(MeekOp::BCheck { rs1 })),
        (any_reg(), any_reg()).prop_map(|(rs1, rs2)| Inst::Meek(MeekOp::LMode { rs1, rs2 })),
        any_reg().prop_map(|rs1| Inst::Meek(MeekOp::LRecord { rs1 })),
        any_reg().prop_map(|rs1| Inst::Meek(MeekOp::LApply { rs1 })),
        any_reg().prop_map(|rs1| Inst::Meek(MeekOp::LJal { rs1 })),
        any_reg().prop_map(|rd| Inst::Meek(MeekOp::LRslt { rd })),
    ]
}

proptest! {
    /// decode(encode(i)) == i for every instruction the crate can represent.
    #[test]
    fn encode_decode_roundtrip(inst in any_inst()) {
        let word = encode(&inst);
        prop_assert_eq!(decode(word), Ok(inst));
    }

    /// Decoding never panics on arbitrary words.
    #[test]
    fn decode_total(word in any::<u32>()) {
        let _ = decode(word);
    }

    /// If an arbitrary word decodes, re-encoding reproduces an equivalent
    /// instruction (decode is a left inverse of encode on its image).
    #[test]
    fn decode_encode_stability(word in any::<u32>()) {
        if let Ok(inst) = decode(word) {
            let word2 = encode(&inst);
            prop_assert_eq!(decode(word2), Ok(inst));
        }
    }

    /// Functional execution is deterministic: identical initial state and
    /// memory produce identical retirement records.
    #[test]
    fn execution_deterministic(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        // A tiny random straight-line program of ALU ops (always executable).
        let mut prog = Vec::new();
        for _ in 0..20 {
            let rd = Reg::from_index(rng.gen_range(1..32));
            let rs1 = Reg::from_index(rng.gen_range(0..32));
            let rs2 = Reg::from_index(rng.gen_range(0..32));
            prog.push(Inst::Alu { op: AluOp::Add, rd, rs1, rs2 });
            prog.push(Inst::AluImm { op: AluImmOp::Xori, rd, rs1, imm: rng.gen_range(-2048..2048) });
        }
        let words: Vec<u32> = prog.iter().map(encode).collect();
        let run = || {
            let mut mem = SparseMemory::new();
            mem.load_program(0x1000, &words);
            let mut st = ArchState::new(0x1000);
            let mut records = Vec::new();
            for _ in 0..prog.len() {
                records.push(exec::step(&mut st, &mut mem).unwrap());
            }
            (st, records)
        };
        let (st_a, rec_a) = run();
        let (st_b, rec_b) = run();
        prop_assert_eq!(st_a, st_b);
        prop_assert_eq!(rec_a, rec_b);
    }

    /// x0 stays zero under arbitrary ALU writes.
    #[test]
    fn x0_invariant(rs1 in any_reg(), imm in i_imm()) {
        let mut mem = SparseMemory::new();
        mem.load_program(0x0, &[encode(&Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X0, rs1, imm })]);
        let mut st = ArchState::new(0x0);
        exec::step(&mut st, &mut mem).unwrap();
        prop_assert_eq!(st.x(Reg::X0), 0);
    }
}
