//! RISC-V instruction-set substrate for the MEEK simulator.
//!
//! This crate implements the parts of RV64 that the MEEK reproduction needs:
//!
//! * decoded instruction representation ([`Inst`]) for RV64IM, the Zicsr
//!   CSR instructions, a double-precision floating-point subset, and the
//!   seven custom **MEEK-ISA** instructions of the paper's Table I;
//! * binary [`encode()`](encode())/[`decode()`](decode()) in both directions (the workload generator
//!   emits real machine code; the core models decode it);
//! * a functional executor ([`exec`]) that advances an [`ArchState`] over a
//!   [`Bus`] and produces a [`Retired`] record per instruction — the dynamic
//!   stream consumed by the timing models in `meek-bigcore` and
//!   `meek-littlecore`;
//! * a disassembler for debugging.
//!
//! # Example
//!
//! ```
//! use meek_isa::inst::AluImmOp;
//! use meek_isa::{encode, exec, ArchState, Inst, Reg, SparseMemory};
//!
//! // addi x5, x0, 42 ; addi x6, x5, 1
//! let prog = [
//!     encode(&Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X5, rs1: Reg::X0, imm: 42 }),
//!     encode(&Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X6, rs1: Reg::X5, imm: 1 }),
//! ];
//! let mut mem = SparseMemory::new();
//! mem.load_program(0x1000, &prog);
//! let mut st = ArchState::new(0x1000);
//! exec::step(&mut st, &mut mem).unwrap();
//! exec::step(&mut st, &mut mem).unwrap();
//! assert_eq!(st.x(Reg::X6), 43);
//! ```

pub mod decode;
pub mod disasm;
pub mod encode;
pub mod exec;
pub mod inst;
pub mod invariants;
pub mod meek;
pub mod mem;
pub mod os;
pub mod predecode;
pub mod reg;
pub mod state;

pub use decode::{decode, DecodeError};
pub use encode::encode;
pub use exec::{step, MemAccess, Retired, Trap, WbDest};
pub use inst::{BranchOp, ExecClass, Inst, LoadOp, StoreOp};
pub use invariants::{decodable, dest_reg, writes_anchor, ANCHOR_REGS, R_PTR};
pub use meek::MeekOp;
pub use mem::{Bus, SparseMemory};
pub use os::{Syscall, CSR_INSTRET, CSR_OS_ENABLE, HALT_PC, SYS_EXIT, SYS_PUTCHAR};
pub use predecode::{step_predecoded, PreDecoded};
pub use reg::{FReg, Reg};
pub use state::ArchState;
