//! Binary encoding of [`Inst`] into 32-bit RISC-V machine words.
//!
//! The workload generator in `meek-workloads` uses this to emit real
//! machine code into simulated memory, which the core models then fetch
//! and [`decode()`](crate::decode()).

use crate::inst::{
    AluImmOp, AluOp, BranchOp, CsrOp, FpCmpOp, FpOp, Inst, LoadOp, MulDivOp, StoreOp,
};
use crate::meek::MeekOp;
use crate::reg::{FReg, Reg};

pub(crate) const OP_LOAD: u32 = 0x03;
pub(crate) const OP_LOAD_FP: u32 = 0x07;
pub(crate) const OP_MISC_MEM: u32 = 0x0F;
pub(crate) const OP_IMM: u32 = 0x13;
pub(crate) const OP_AUIPC: u32 = 0x17;
pub(crate) const OP_IMM_32: u32 = 0x1B;
pub(crate) const OP_STORE: u32 = 0x23;
pub(crate) const OP_STORE_FP: u32 = 0x27;
pub(crate) const OP_OP: u32 = 0x33;
pub(crate) const OP_LUI: u32 = 0x37;
pub(crate) const OP_OP_32: u32 = 0x3B;
pub(crate) const OP_MADD: u32 = 0x43;
pub(crate) const OP_OP_FP: u32 = 0x53;
pub(crate) const OP_BRANCH: u32 = 0x63;
pub(crate) const OP_JALR: u32 = 0x67;
pub(crate) const OP_JAL: u32 = 0x6F;
pub(crate) const OP_SYSTEM: u32 = 0x73;
/// The *custom-0* major opcode hosting the MEEK ISA extension.
pub(crate) const OP_CUSTOM_0: u32 = 0x0B;

fn r_type(opcode: u32, rd: u8, funct3: u32, rs1: u8, rs2: u8, funct7: u32) -> u32 {
    opcode
        | ((rd as u32) << 7)
        | (funct3 << 12)
        | ((rs1 as u32) << 15)
        | ((rs2 as u32) << 20)
        | (funct7 << 25)
}

fn i_type(opcode: u32, rd: u8, funct3: u32, rs1: u8, imm: i32) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "I-imm {imm} out of range");
    opcode
        | ((rd as u32) << 7)
        | (funct3 << 12)
        | ((rs1 as u32) << 15)
        | (((imm as u32) & 0xFFF) << 20)
}

fn s_type(opcode: u32, funct3: u32, rs1: u8, rs2: u8, imm: i32) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "S-imm {imm} out of range");
    let imm = imm as u32;
    opcode
        | ((imm & 0x1F) << 7)
        | (funct3 << 12)
        | ((rs1 as u32) << 15)
        | ((rs2 as u32) << 20)
        | (((imm >> 5) & 0x7F) << 25)
}

fn b_type(opcode: u32, funct3: u32, rs1: u8, rs2: u8, imm: i32) -> u32 {
    debug_assert!((-4096..=4095).contains(&imm) && imm % 2 == 0, "B-imm {imm} out of range");
    let imm = imm as u32;
    opcode
        | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xF) << 8)
        | (funct3 << 12)
        | ((rs1 as u32) << 15)
        | ((rs2 as u32) << 20)
        | (((imm >> 5) & 0x3F) << 25)
        | (((imm >> 12) & 1) << 31)
}

fn u_type(opcode: u32, rd: u8, imm: i32) -> u32 {
    opcode | ((rd as u32) << 7) | ((imm as u32) << 12)
}

fn j_type(opcode: u32, rd: u8, imm: i32) -> u32 {
    debug_assert!(
        (-(1 << 20)..(1 << 20)).contains(&imm) && imm % 2 == 0,
        "J-imm {imm} out of range"
    );
    let imm = imm as u32;
    opcode
        | ((rd as u32) << 7)
        | (((imm >> 12) & 0xFF) << 12)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 20) & 1) << 31)
}

fn x(r: Reg) -> u8 {
    r.index()
}

fn f(r: FReg) -> u8 {
    r.index()
}

/// Encodes a decoded instruction into its 32-bit machine word.
///
/// The inverse of [`decode()`](crate::decode()): for every `Inst` produced by
/// this crate, `decode(encode(i)) == Ok(i)` (property-tested).
///
/// # Panics
///
/// Debug builds panic if an immediate is out of range for its format
/// (the workload generator never produces such immediates).
pub fn encode(inst: &Inst) -> u32 {
    match *inst {
        Inst::Lui { rd, imm } => u_type(OP_LUI, x(rd), imm),
        Inst::Auipc { rd, imm } => u_type(OP_AUIPC, x(rd), imm),
        Inst::Jal { rd, offset } => j_type(OP_JAL, x(rd), offset),
        Inst::Jalr { rd, rs1, offset } => i_type(OP_JALR, x(rd), 0, x(rs1), offset),
        Inst::Branch { op, rs1, rs2, offset } => {
            let funct3 = match op {
                BranchOp::Beq => 0b000,
                BranchOp::Bne => 0b001,
                BranchOp::Blt => 0b100,
                BranchOp::Bge => 0b101,
                BranchOp::Bltu => 0b110,
                BranchOp::Bgeu => 0b111,
            };
            b_type(OP_BRANCH, funct3, x(rs1), x(rs2), offset)
        }
        Inst::Load { op, rd, rs1, offset } => {
            let funct3 = match op {
                LoadOp::Lb => 0b000,
                LoadOp::Lh => 0b001,
                LoadOp::Lw => 0b010,
                LoadOp::Ld => 0b011,
                LoadOp::Lbu => 0b100,
                LoadOp::Lhu => 0b101,
                LoadOp::Lwu => 0b110,
            };
            i_type(OP_LOAD, x(rd), funct3, x(rs1), offset)
        }
        Inst::Store { op, rs1, rs2, offset } => {
            let funct3 = match op {
                StoreOp::Sb => 0b000,
                StoreOp::Sh => 0b001,
                StoreOp::Sw => 0b010,
                StoreOp::Sd => 0b011,
            };
            s_type(OP_STORE, funct3, x(rs1), x(rs2), offset)
        }
        Inst::AluImm { op, rd, rs1, imm } => match op {
            AluImmOp::Addi => i_type(OP_IMM, x(rd), 0b000, x(rs1), imm),
            AluImmOp::Slti => i_type(OP_IMM, x(rd), 0b010, x(rs1), imm),
            AluImmOp::Sltiu => i_type(OP_IMM, x(rd), 0b011, x(rs1), imm),
            AluImmOp::Xori => i_type(OP_IMM, x(rd), 0b100, x(rs1), imm),
            AluImmOp::Ori => i_type(OP_IMM, x(rd), 0b110, x(rs1), imm),
            AluImmOp::Andi => i_type(OP_IMM, x(rd), 0b111, x(rs1), imm),
            AluImmOp::Slli => i_type(OP_IMM, x(rd), 0b001, x(rs1), imm & 0x3F),
            AluImmOp::Srli => i_type(OP_IMM, x(rd), 0b101, x(rs1), imm & 0x3F),
            AluImmOp::Srai => i_type(OP_IMM, x(rd), 0b101, x(rs1), (imm & 0x3F) | 0x400),
            AluImmOp::Addiw => i_type(OP_IMM_32, x(rd), 0b000, x(rs1), imm),
            AluImmOp::Slliw => i_type(OP_IMM_32, x(rd), 0b001, x(rs1), imm & 0x1F),
            AluImmOp::Srliw => i_type(OP_IMM_32, x(rd), 0b101, x(rs1), imm & 0x1F),
            AluImmOp::Sraiw => i_type(OP_IMM_32, x(rd), 0b101, x(rs1), (imm & 0x1F) | 0x400),
        },
        Inst::Alu { op, rd, rs1, rs2 } => {
            let (opcode, funct3, funct7) = match op {
                AluOp::Add => (OP_OP, 0b000, 0x00),
                AluOp::Sub => (OP_OP, 0b000, 0x20),
                AluOp::Sll => (OP_OP, 0b001, 0x00),
                AluOp::Slt => (OP_OP, 0b010, 0x00),
                AluOp::Sltu => (OP_OP, 0b011, 0x00),
                AluOp::Xor => (OP_OP, 0b100, 0x00),
                AluOp::Srl => (OP_OP, 0b101, 0x00),
                AluOp::Sra => (OP_OP, 0b101, 0x20),
                AluOp::Or => (OP_OP, 0b110, 0x00),
                AluOp::And => (OP_OP, 0b111, 0x00),
                AluOp::Addw => (OP_OP_32, 0b000, 0x00),
                AluOp::Subw => (OP_OP_32, 0b000, 0x20),
                AluOp::Sllw => (OP_OP_32, 0b001, 0x00),
                AluOp::Srlw => (OP_OP_32, 0b101, 0x00),
                AluOp::Sraw => (OP_OP_32, 0b101, 0x20),
            };
            r_type(opcode, x(rd), funct3, x(rs1), x(rs2), funct7)
        }
        Inst::MulDiv { op, rd, rs1, rs2 } => {
            let (opcode, funct3) = match op {
                MulDivOp::Mul => (OP_OP, 0b000),
                MulDivOp::Mulh => (OP_OP, 0b001),
                MulDivOp::Mulhsu => (OP_OP, 0b010),
                MulDivOp::Mulhu => (OP_OP, 0b011),
                MulDivOp::Div => (OP_OP, 0b100),
                MulDivOp::Divu => (OP_OP, 0b101),
                MulDivOp::Rem => (OP_OP, 0b110),
                MulDivOp::Remu => (OP_OP, 0b111),
                MulDivOp::Mulw => (OP_OP_32, 0b000),
                MulDivOp::Divw => (OP_OP_32, 0b100),
                MulDivOp::Divuw => (OP_OP_32, 0b101),
                MulDivOp::Remw => (OP_OP_32, 0b110),
                MulDivOp::Remuw => (OP_OP_32, 0b111),
            };
            r_type(opcode, x(rd), funct3, x(rs1), x(rs2), 0x01)
        }
        Inst::Fld { rd, rs1, offset } => i_type(OP_LOAD_FP, f(rd), 0b011, x(rs1), offset),
        Inst::Fsd { rs1, rs2, offset } => s_type(OP_STORE_FP, 0b011, x(rs1), f(rs2), offset),
        Inst::Fp { op, rd, rs1, rs2 } => {
            let (funct7, funct3, rs2_field) = match op {
                FpOp::FaddD => (0x01, 0b000, f(rs2)),
                FpOp::FsubD => (0x05, 0b000, f(rs2)),
                FpOp::FmulD => (0x09, 0b000, f(rs2)),
                FpOp::FdivD => (0x0D, 0b000, f(rs2)),
                FpOp::FsqrtD => (0x2D, 0b000, 0),
                FpOp::FsgnjD => (0x11, 0b000, f(rs2)),
                FpOp::FminD => (0x15, 0b000, f(rs2)),
                FpOp::FmaxD => (0x15, 0b001, f(rs2)),
            };
            r_type(OP_OP_FP, f(rd), funct3, f(rs1), rs2_field, funct7)
        }
        Inst::FpCmp { op, rd, rs1, rs2 } => {
            let funct3 = match op {
                FpCmpOp::FeqD => 0b010,
                FpCmpOp::FltD => 0b001,
                FpCmpOp::FleD => 0b000,
            };
            r_type(OP_OP_FP, x(rd), funct3, f(rs1), f(rs2), 0x51)
        }
        Inst::FmaddD { rd, rs1, rs2, rs3 } => {
            // R4-type: rs3 in [31:27], fmt=01 (D) in [26:25].
            r_type(OP_MADD, f(rd), 0b000, f(rs1), f(rs2), 0)
                | (0b01 << 25)
                | ((f(rs3) as u32) << 27)
        }
        Inst::FcvtDL { rd, rs1 } => r_type(OP_OP_FP, f(rd), 0b000, x(rs1), 0x02, 0x69),
        Inst::FcvtLD { rd, rs1 } => r_type(OP_OP_FP, x(rd), 0b001, f(rs1), 0x02, 0x61),
        Inst::FmvXD { rd, rs1 } => r_type(OP_OP_FP, x(rd), 0b000, f(rs1), 0x00, 0x71),
        Inst::FmvDX { rd, rs1 } => r_type(OP_OP_FP, f(rd), 0b000, x(rs1), 0x00, 0x79),
        Inst::Csr { op, rd, rs1, csr } => {
            let funct3 = match op {
                CsrOp::Rw => 0b001,
                CsrOp::Rs => 0b010,
                CsrOp::Rc => 0b011,
                CsrOp::Rwi => 0b101,
                CsrOp::Rsi => 0b110,
                CsrOp::Rci => 0b111,
            };
            OP_SYSTEM
                | ((x(rd) as u32) << 7)
                | (funct3 << 12)
                | ((x(rs1) as u32) << 15)
                | ((csr as u32) << 20)
        }
        Inst::Fence => i_type(OP_MISC_MEM, 0, 0b000, 0, 0x0FF),
        Inst::Ecall => OP_SYSTEM,
        Inst::Ebreak => OP_SYSTEM | (1 << 20),
        Inst::Meek(op) => {
            let funct3 = op.funct3() as u32;
            let (rd, rs1, rs2) = match op {
                MeekOp::BHook { rs1, rs2 } | MeekOp::LMode { rs1, rs2 } => (0, x(rs1), x(rs2)),
                MeekOp::BCheck { rs1 }
                | MeekOp::LRecord { rs1 }
                | MeekOp::LApply { rs1 }
                | MeekOp::LJal { rs1 } => (0, x(rs1), 0),
                MeekOp::LRslt { rd } => (x(rd), 0, 0),
            };
            r_type(OP_CUSTOM_0, rd, funct3, rs1, rs2, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        // Cross-checked against the RISC-V spec / GNU assembler output.
        // addi a0, a1, 1  -> 0x00158513
        assert_eq!(
            encode(&Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X10, rs1: Reg::X11, imm: 1 }),
            0x0015_8513
        );
        // add a0, a1, a2 -> 0x00C58533
        assert_eq!(
            encode(&Inst::Alu { op: AluOp::Add, rd: Reg::X10, rs1: Reg::X11, rs2: Reg::X12 }),
            0x00C5_8533
        );
        // sub a0, a1, a2 -> 0x40C58533
        assert_eq!(
            encode(&Inst::Alu { op: AluOp::Sub, rd: Reg::X10, rs1: Reg::X11, rs2: Reg::X12 }),
            0x40C5_8533
        );
        // ld a0, 8(sp) -> 0x00813503
        assert_eq!(
            encode(&Inst::Load { op: LoadOp::Ld, rd: Reg::X10, rs1: Reg::X2, offset: 8 }),
            0x0081_3503
        );
        // sd a0, 8(sp) -> 0x00A13423
        assert_eq!(
            encode(&Inst::Store { op: StoreOp::Sd, rs1: Reg::X2, rs2: Reg::X10, offset: 8 }),
            0x00A1_3423
        );
        // beq a0, a1, +16 -> 0x00B50863
        assert_eq!(
            encode(&Inst::Branch { op: BranchOp::Beq, rs1: Reg::X10, rs2: Reg::X11, offset: 16 }),
            0x00B5_0863
        );
        // jal ra, +8 -> 0x008000EF; jal ra, +2048 exercises imm[11] -> 0x001000EF
        assert_eq!(encode(&Inst::Jal { rd: Reg::X1, offset: 8 }), 0x0080_00EF);
        assert_eq!(encode(&Inst::Jal { rd: Reg::X1, offset: 2048 }), 0x0010_00EF);
        // lui a0, 0x12345 -> 0x12345537
        assert_eq!(encode(&Inst::Lui { rd: Reg::X10, imm: 0x12345 }), 0x1234_5537);
        // mul a0, a1, a2 -> 0x02C58533
        assert_eq!(
            encode(&Inst::MulDiv { op: MulDivOp::Mul, rd: Reg::X10, rs1: Reg::X11, rs2: Reg::X12 }),
            0x02C5_8533
        );
        // ecall -> 0x00000073
        assert_eq!(encode(&Inst::Ecall), 0x0000_0073);
        // ebreak -> 0x00100073
        assert_eq!(encode(&Inst::Ebreak), 0x0010_0073);
    }

    #[test]
    fn negative_immediates() {
        // addi a0, a0, -1 -> 0xFFF50513
        assert_eq!(
            encode(&Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X10, rs1: Reg::X10, imm: -1 }),
            0xFFF5_0513
        );
        // beq x0, x0, -4 -> 0xFE000EE3
        assert_eq!(
            encode(&Inst::Branch { op: BranchOp::Beq, rs1: Reg::X0, rs2: Reg::X0, offset: -4 }),
            0xFE00_0EE3
        );
    }

    #[test]
    fn meek_encodings_distinct() {
        let ops = [
            Inst::Meek(MeekOp::BHook { rs1: Reg::X10, rs2: Reg::X11 }),
            Inst::Meek(MeekOp::BCheck { rs1: Reg::X10 }),
            Inst::Meek(MeekOp::LMode { rs1: Reg::X10, rs2: Reg::X11 }),
            Inst::Meek(MeekOp::LRecord { rs1: Reg::X10 }),
            Inst::Meek(MeekOp::LApply { rs1: Reg::X10 }),
            Inst::Meek(MeekOp::LJal { rs1: Reg::X10 }),
            Inst::Meek(MeekOp::LRslt { rd: Reg::X10 }),
        ];
        let mut seen = std::collections::HashSet::new();
        for op in &ops {
            let word = encode(op);
            assert_eq!(word & 0x7F, OP_CUSTOM_0, "custom-0 opcode for {op:?}");
            assert!(seen.insert(word), "duplicate encoding for {op:?}");
        }
    }
}
