//! A small disassembler for debugging traces and failed checks.

use crate::inst::{
    AluImmOp, AluOp, BranchOp, CsrOp, FpCmpOp, FpOp, Inst, LoadOp, MulDivOp, StoreOp,
};
use std::fmt;

/// Wrapper that formats an [`Inst`] as assembly text.
///
/// # Example
///
/// ```
/// use meek_isa::{disasm::Disasm, Inst, Reg};
/// use meek_isa::inst::{AluImmOp};
///
/// let i = Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X10, rs1: Reg::X11, imm: -4 };
/// assert_eq!(Disasm(&i).to_string(), "addi a0, a1, -4");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Disasm<'a>(pub &'a Inst);

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Sll => "sll",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Xor => "xor",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Or => "or",
        AluOp::And => "and",
        AluOp::Addw => "addw",
        AluOp::Subw => "subw",
        AluOp::Sllw => "sllw",
        AluOp::Srlw => "srlw",
        AluOp::Sraw => "sraw",
    }
}

fn alu_imm_name(op: AluImmOp) -> &'static str {
    match op {
        AluImmOp::Addi => "addi",
        AluImmOp::Slti => "slti",
        AluImmOp::Sltiu => "sltiu",
        AluImmOp::Xori => "xori",
        AluImmOp::Ori => "ori",
        AluImmOp::Andi => "andi",
        AluImmOp::Slli => "slli",
        AluImmOp::Srli => "srli",
        AluImmOp::Srai => "srai",
        AluImmOp::Addiw => "addiw",
        AluImmOp::Slliw => "slliw",
        AluImmOp::Srliw => "srliw",
        AluImmOp::Sraiw => "sraiw",
    }
}

fn muldiv_name(op: MulDivOp) -> &'static str {
    match op {
        MulDivOp::Mul => "mul",
        MulDivOp::Mulh => "mulh",
        MulDivOp::Mulhsu => "mulhsu",
        MulDivOp::Mulhu => "mulhu",
        MulDivOp::Div => "div",
        MulDivOp::Divu => "divu",
        MulDivOp::Rem => "rem",
        MulDivOp::Remu => "remu",
        MulDivOp::Mulw => "mulw",
        MulDivOp::Divw => "divw",
        MulDivOp::Divuw => "divuw",
        MulDivOp::Remw => "remw",
        MulDivOp::Remuw => "remuw",
    }
}

impl fmt::Display for Disasm<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self.0 {
            Inst::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", imm & 0xFFFFF),
            Inst::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", imm & 0xFFFFF),
            Inst::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Inst::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Inst::Branch { op, rs1, rs2, offset } => {
                let name = match op {
                    BranchOp::Beq => "beq",
                    BranchOp::Bne => "bne",
                    BranchOp::Blt => "blt",
                    BranchOp::Bge => "bge",
                    BranchOp::Bltu => "bltu",
                    BranchOp::Bgeu => "bgeu",
                };
                write!(f, "{name} {rs1}, {rs2}, {offset}")
            }
            Inst::Load { op, rd, rs1, offset } => {
                let name = match op {
                    LoadOp::Lb => "lb",
                    LoadOp::Lh => "lh",
                    LoadOp::Lw => "lw",
                    LoadOp::Ld => "ld",
                    LoadOp::Lbu => "lbu",
                    LoadOp::Lhu => "lhu",
                    LoadOp::Lwu => "lwu",
                };
                write!(f, "{name} {rd}, {offset}({rs1})")
            }
            Inst::Store { op, rs1, rs2, offset } => {
                let name = match op {
                    StoreOp::Sb => "sb",
                    StoreOp::Sh => "sh",
                    StoreOp::Sw => "sw",
                    StoreOp::Sd => "sd",
                };
                write!(f, "{name} {rs2}, {offset}({rs1})")
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                write!(f, "{} {rd}, {rs1}, {imm}", alu_imm_name(op))
            }
            Inst::Alu { op, rd, rs1, rs2 } => write!(f, "{} {rd}, {rs1}, {rs2}", alu_name(op)),
            Inst::MulDiv { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", muldiv_name(op))
            }
            Inst::Fld { rd, rs1, offset } => write!(f, "fld {rd}, {offset}({rs1})"),
            Inst::Fsd { rs1, rs2, offset } => write!(f, "fsd {rs2}, {offset}({rs1})"),
            Inst::Fp { op, rd, rs1, rs2 } => {
                let name = match op {
                    FpOp::FaddD => "fadd.d",
                    FpOp::FsubD => "fsub.d",
                    FpOp::FmulD => "fmul.d",
                    FpOp::FdivD => "fdiv.d",
                    FpOp::FsqrtD => return write!(f, "fsqrt.d {rd}, {rs1}"),
                    FpOp::FsgnjD => "fsgnj.d",
                    FpOp::FminD => "fmin.d",
                    FpOp::FmaxD => "fmax.d",
                };
                write!(f, "{name} {rd}, {rs1}, {rs2}")
            }
            Inst::FpCmp { op, rd, rs1, rs2 } => {
                let name = match op {
                    FpCmpOp::FeqD => "feq.d",
                    FpCmpOp::FltD => "flt.d",
                    FpCmpOp::FleD => "fle.d",
                };
                write!(f, "{name} {rd}, {rs1}, {rs2}")
            }
            Inst::FmaddD { rd, rs1, rs2, rs3 } => write!(f, "fmadd.d {rd}, {rs1}, {rs2}, {rs3}"),
            Inst::FcvtDL { rd, rs1 } => write!(f, "fcvt.d.l {rd}, {rs1}"),
            Inst::FcvtLD { rd, rs1 } => write!(f, "fcvt.l.d {rd}, {rs1}"),
            Inst::FmvXD { rd, rs1 } => write!(f, "fmv.x.d {rd}, {rs1}"),
            Inst::FmvDX { rd, rs1 } => write!(f, "fmv.d.x {rd}, {rs1}"),
            Inst::Csr { op, rd, rs1, csr } => {
                let name = match op {
                    CsrOp::Rw => "csrrw",
                    CsrOp::Rs => "csrrs",
                    CsrOp::Rc => "csrrc",
                    CsrOp::Rwi => "csrrwi",
                    CsrOp::Rsi => "csrrsi",
                    CsrOp::Rci => "csrrci",
                };
                match op {
                    CsrOp::Rwi | CsrOp::Rsi | CsrOp::Rci => {
                        write!(f, "{name} {rd}, {csr:#x}, {}", rs1.index())
                    }
                    _ => write!(f, "{name} {rd}, {csr:#x}, {rs1}"),
                }
            }
            Inst::Fence => write!(f, "fence"),
            Inst::Ecall => write!(f, "ecall"),
            Inst::Ebreak => write!(f, "ebreak"),
            Inst::Meek(op) => write!(f, "{op}"),
        }
    }
}

/// Disassembles a raw machine word, falling back to a `.word` directive
/// when the word does not decode — the form trace windows want, since a
/// divergence investigation must render corrupt fetches too.
pub fn disasm_word(raw: u32) -> String {
    match crate::decode::decode(raw) {
        Ok(inst) => Disasm(&inst).to_string(),
        Err(_) => format!(".word {raw:#010x}"),
    }
}

/// Renders a disassembled window of `n` instructions starting at
/// `start_pc`, one `pc: disassembly` line per word, marking `mark_pc`
/// with a `=>` cursor. Used by the difftest divergence reports.
pub fn disasm_window(
    image: &crate::mem::SparseMemory,
    start_pc: u64,
    n: usize,
    mark_pc: u64,
) -> String {
    let mut out = String::new();
    for i in 0..n {
        // PCs wrap mod 2^64 like all byte addresses: a trap window near
        // the top of the address space renders across the wrap.
        let pc = start_pc.wrapping_add(4 * i as u64);
        let cursor = if pc == mark_pc { "=>" } else { "  " };
        let line = disasm_word(image.peek_inst(pc));
        out.push_str(&format!("{cursor} {pc:#08x}: {line}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{FReg, Reg};

    #[test]
    fn undecodable_word_renders_as_directive() {
        assert_eq!(disasm_word(0), ".word 0x00000000");
        assert_eq!(
            disasm_word(crate::encode(&Inst::Ecall)),
            "ecall",
            "decodable words disassemble normally"
        );
    }

    #[test]
    fn window_marks_the_cursor_line() {
        let mut mem = crate::mem::SparseMemory::new();
        mem.load_program(0x1000, &[crate::encode(&Inst::Ecall), crate::encode(&Inst::Fence)]);
        let w = disasm_window(&mem, 0x1000, 2, 0x1004);
        assert!(w.contains("   0x001000: ecall"), "window:\n{w}");
        assert!(w.contains("=> 0x001004: fence"), "window:\n{w}");
    }

    #[test]
    fn formats() {
        let cases: [(Inst, &str); 7] = [
            (Inst::Lui { rd: Reg::X10, imm: 0x12345 }, "lui a0, 0x12345"),
            (Inst::Jal { rd: Reg::X1, offset: -8 }, "jal ra, -8"),
            (
                Inst::Load { op: LoadOp::Ld, rd: Reg::X10, rs1: Reg::X2, offset: 16 },
                "ld a0, 16(sp)",
            ),
            (
                Inst::Store { op: StoreOp::Sd, rs1: Reg::X2, rs2: Reg::X10, offset: 16 },
                "sd a0, 16(sp)",
            ),
            (
                Inst::Fp {
                    op: FpOp::FdivD,
                    rd: FReg::new(1),
                    rs1: FReg::new(2),
                    rs2: FReg::new(3),
                },
                "fdiv.d f1, f2, f3",
            ),
            (Inst::Ecall, "ecall"),
            (Inst::Meek(crate::meek::MeekOp::LApply { rs1: Reg::X10 }), "l.apply a0"),
        ];
        for (inst, expect) in cases {
            assert_eq!(Disasm(&inst).to_string(), expect);
        }
    }
}
