//! Architectural register names.

use std::fmt;

/// An integer (GPR) register index, `x0`–`x31`.
///
/// `x0` is hardwired to zero; writes to it are discarded by
/// [`ArchState`](crate::ArchState).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Reg {
    X0 = 0,
    X1,
    X2,
    X3,
    X4,
    X5,
    X6,
    X7,
    X8,
    X9,
    X10,
    X11,
    X12,
    X13,
    X14,
    X15,
    X16,
    X17,
    X18,
    X19,
    X20,
    X21,
    X22,
    X23,
    X24,
    X25,
    X26,
    X27,
    X28,
    X29,
    X30,
    X31,
}

impl Reg {
    /// All 32 registers in index order.
    pub const ALL: [Reg; 32] = {
        let mut a = [Reg::X0; 32];
        let mut i = 0u8;
        while i < 32 {
            a[i as usize] = Reg::from_index_const(i);
            i += 1;
        }
        a
    };

    const fn from_index_const(i: u8) -> Reg {
        // Safety note avoided: plain match keeps this const-friendly and safe.
        match i {
            0 => Reg::X0,
            1 => Reg::X1,
            2 => Reg::X2,
            3 => Reg::X3,
            4 => Reg::X4,
            5 => Reg::X5,
            6 => Reg::X6,
            7 => Reg::X7,
            8 => Reg::X8,
            9 => Reg::X9,
            10 => Reg::X10,
            11 => Reg::X11,
            12 => Reg::X12,
            13 => Reg::X13,
            14 => Reg::X14,
            15 => Reg::X15,
            16 => Reg::X16,
            17 => Reg::X17,
            18 => Reg::X18,
            19 => Reg::X19,
            20 => Reg::X20,
            21 => Reg::X21,
            22 => Reg::X22,
            23 => Reg::X23,
            24 => Reg::X24,
            25 => Reg::X25,
            26 => Reg::X26,
            27 => Reg::X27,
            28 => Reg::X28,
            29 => Reg::X29,
            30 => Reg::X30,
            _ => Reg::X31,
        }
    }

    /// Builds a register from a 5-bit index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    #[inline]
    pub fn from_index(i: u8) -> Reg {
        assert!(i < 32, "register index {i} out of range");
        Reg::from_index_const(i)
    }

    /// The 5-bit encoding index of this register.
    #[inline]
    pub fn index(self) -> u8 {
        self as u8
    }

    /// The ABI name (`zero`, `ra`, `sp`, …) used by the disassembler.
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.index() as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abi_name())
    }
}

/// A floating-point register index, `f0`–`f31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// Builds a floating-point register from a 5-bit index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    #[inline]
    pub fn new(i: u8) -> FReg {
        assert!(i < 32, "fp register index {i} out of range");
        FReg(i)
    }

    /// The 5-bit encoding index of this register.
    #[inline]
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for i in 0..32 {
            assert_eq!(Reg::from_index(i).index(), i);
        }
    }

    #[test]
    fn reg_all_in_order() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index() as usize, i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::from_index(32);
    }

    #[test]
    fn abi_names() {
        assert_eq!(Reg::X0.abi_name(), "zero");
        assert_eq!(Reg::X2.abi_name(), "sp");
        assert_eq!(Reg::X10.abi_name(), "a0");
        assert_eq!(Reg::X31.abi_name(), "t6");
        assert_eq!(Reg::X10.to_string(), "a0");
    }

    #[test]
    fn freg_roundtrip() {
        for i in 0..32 {
            assert_eq!(FReg::new(i).index(), i);
            assert_eq!(FReg::new(i).to_string(), format!("f{i}"));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn freg_out_of_range_panics() {
        let _ = FReg::new(32);
    }
}
