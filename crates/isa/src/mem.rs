//! The functional memory interface used by the executor.
//!
//! Timing (caches, MSHRs, DRAM) lives in `meek-mem`; this module only
//! defines the *functional* [`Bus`] trait plus a simple page-sparse
//! backing store.

use std::collections::HashMap;

/// A functional memory bus: byte-addressed reads and writes of 1–8 bytes.
///
/// Addresses are masked to their natural alignment by the executor, so
/// implementations may assume aligned accesses.
pub trait Bus {
    /// Reads `size` bytes (1, 2, 4, or 8) at `addr`, zero-extended.
    fn read(&mut self, addr: u64, size: u8) -> u64;

    /// Writes the low `size` bytes of `val` at `addr`.
    fn write(&mut self, addr: u64, size: u8, val: u64);

    /// Fetches a 32-bit instruction word at `addr`.
    fn fetch(&mut self, addr: u64) -> u32 {
        self.read(addr, 4) as u32
    }
}

impl<B: Bus + ?Sized> Bus for &mut B {
    fn read(&mut self, addr: u64, size: u8) -> u64 {
        (**self).read(addr, size)
    }

    fn write(&mut self, addr: u64, size: u8, val: u64) {
        (**self).write(addr, size, val)
    }

    fn fetch(&mut self, addr: u64) -> u32 {
        (**self).fetch(addr)
    }
}

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// A sparse, page-allocated memory. Unwritten bytes read as zero.
///
/// # Example
///
/// ```
/// use meek_isa::{Bus, SparseMemory};
///
/// let mut mem = SparseMemory::new();
/// mem.write(0x8000_0000, 8, 0x0123_4567_89AB_CDEF);
/// assert_eq!(mem.read(0x8000_0000, 4), 0x89AB_CDEF);
/// assert_eq!(mem.read(0x8000_0004, 4), 0x0123_4567);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMemory {
    /// Creates an empty memory.
    pub fn new() -> SparseMemory {
        SparseMemory { pages: HashMap::new() }
    }

    /// Copies a program (a slice of 32-bit words) to `base`, in order.
    pub fn load_program(&mut self, base: u64, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.write(base + 4 * i as u64, 4, *w as u64);
        }
    }

    /// Number of resident pages (for tests and stats).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Reads without requiring `&mut self` — used by the little cores,
    /// which share the program image read-only during replay.
    pub fn peek(&self, addr: u64, size: u8) -> u64 {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let mut v = 0u64;
        for i in 0..size as u64 {
            v |= (self.byte(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Fetches a 32-bit instruction word without requiring `&mut self`.
    pub fn peek_inst(&self, addr: u64) -> u32 {
        self.peek(addr, 4) as u32
    }

    /// Whether two memories hold identical contents, treating absent
    /// pages as all-zero. Plain `==` on the page maps would call two
    /// states different when one merely materialised a zero page (e.g.
    /// a recovery rollback writing zeros back over a squashed store) —
    /// architecturally they are the same memory.
    pub fn content_eq(&self, other: &SparseMemory) -> bool {
        let covered =
            |mem: &SparseMemory, page: u64, data: &[u8; PAGE_SIZE]| match mem.pages.get(&page) {
                Some(p) => p.as_ref() == data,
                None => data.iter().all(|&b| b == 0),
            };
        self.pages.iter().all(|(&page, data)| covered(other, page, data))
            && other
                .pages
                .iter()
                .filter(|(page, _)| !self.pages.contains_key(page))
                .all(|(_, data)| data.iter().all(|&b| b == 0))
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages.entry(addr >> PAGE_BITS).or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    fn byte(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(p) => p[(addr & (PAGE_SIZE as u64 - 1)) as usize],
            None => 0,
        }
    }
}

impl Bus for SparseMemory {
    // Byte addresses wrap mod 2^64: a fuzzed access at the top of the
    // address space must straddle to address 0, not overflow-panic.
    fn read(&mut self, addr: u64, size: u8) -> u64 {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let mut v = 0u64;
        for i in 0..size as u64 {
            v |= (self.byte(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    fn write(&mut self, addr: u64, size: u8, val: u64) {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        for i in 0..size as u64 {
            let a = addr.wrapping_add(i);
            let page = self.page_mut(a);
            page[(a & (PAGE_SIZE as u64 - 1)) as usize] = (val >> (8 * i)) as u8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let mut m = SparseMemory::new();
        assert_eq!(m.read(0xFFFF_0000, 8), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = SparseMemory::new();
        m.write(0x100, 8, 0x0102_0304_0506_0708);
        assert_eq!(m.read(0x100, 1), 0x08);
        assert_eq!(m.read(0x107, 1), 0x01);
        assert_eq!(m.read(0x100, 2), 0x0708);
        assert_eq!(m.read(0x104, 4), 0x0102_0304);
    }

    #[test]
    fn cross_page_write() {
        let mut m = SparseMemory::new();
        m.write(0xFFC, 8, u64::MAX);
        assert_eq!(m.read(0xFFC, 8), u64::MAX);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn partial_overwrite() {
        let mut m = SparseMemory::new();
        m.write(0x200, 8, u64::MAX);
        m.write(0x202, 2, 0);
        assert_eq!(m.read(0x200, 8), 0xFFFF_FFFF_0000_FFFF);
    }

    #[test]
    fn content_eq_ignores_materialised_zero_pages() {
        let mut a = SparseMemory::new();
        let mut b = SparseMemory::new();
        a.write(0x1000, 8, 0xFEED);
        b.write(0x1000, 8, 0xFEED);
        assert!(a.content_eq(&b));
        // b materialises a zero page a never touched.
        b.write(0x9000, 8, 7);
        assert!(!a.content_eq(&b));
        b.write(0x9000, 8, 0);
        assert!(a.content_eq(&b), "an all-zero page equals an absent page");
        assert!(b.content_eq(&a), "content equality is symmetric");
        a.write(0x1000, 1, 0xAA);
        assert!(!a.content_eq(&b));
    }

    #[test]
    fn program_loading_and_fetch() {
        let mut m = SparseMemory::new();
        m.load_program(0x1000, &[0xAABB_CCDD, 0x1122_3344]);
        assert_eq!(m.fetch(0x1000), 0xAABB_CCDD);
        assert_eq!(m.fetch(0x1004), 0x1122_3344);
    }
}
