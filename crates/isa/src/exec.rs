//! Functional execution: one architectural step per call, producing a
//! [`Retired`] record — the dynamic-instruction stream that both timing
//! models (big core, little core) consume.

use crate::decode::{decode, DecodeError};
use crate::inst::{
    AluImmOp, AluOp, BranchOp, CsrOp, ExecClass, FpCmpOp, FpOp, Inst, LoadOp, MulDivOp,
};
use crate::meek::MeekOp;
use crate::mem::Bus;
use crate::os::{Syscall, CSR_INSTRET, CSR_OS_ENABLE, HALT_PC, SYS_EXIT, SYS_PUTCHAR};
use crate::reg::{FReg, Reg};
use crate::state::ArchState;
use std::fmt;

/// An architectural trap raised by [`step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// The fetched word did not decode.
    IllegalInstruction {
        /// PC of the offending fetch.
        pc: u64,
        /// The word that failed to decode.
        word: u32,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Trap::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#x}")
            }
        }
    }
}

impl std::error::Error for Trap {}

impl From<(u64, DecodeError)> for Trap {
    fn from((pc, e): (u64, DecodeError)) -> Trap {
        Trap::IllegalInstruction { pc, word: e.word }
    }
}

/// A data-memory access performed by a retired instruction.
///
/// For loads, `data` is the value written to the destination register
/// (after sign/zero extension) — exactly what the LSL must supply during
/// replay. For stores, `data` is the stored value masked to `size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective (alignment-masked) address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
    /// Load result or store payload.
    pub data: u64,
    /// `true` for stores.
    pub is_store: bool,
}

/// Control-flow outcome of a retired branch or jump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Whether the branch was taken (always `true` for jumps).
    pub taken: bool,
    /// The target if taken.
    pub target: u64,
    /// `true` for conditional branches, `false` for JAL/JALR/l.jal.
    pub is_conditional: bool,
    /// `true` when the target comes from a register (JALR), making the
    /// target itself predictable only via the RAS/BTB.
    pub is_indirect: bool,
}

/// Destination of a register writeback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WbDest {
    /// An integer register.
    Int(Reg),
    /// A floating-point register.
    Fp(FReg),
}

/// The record of one retired instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Retired {
    /// PC of the instruction.
    pub pc: u64,
    /// Raw machine word.
    pub raw: u32,
    /// Decoded form.
    pub inst: Inst,
    /// Execution class (cached from `inst.class()`).
    pub class: ExecClass,
    /// Architectural next PC.
    pub next_pc: u64,
    /// Branch outcome, if this is a control-flow instruction.
    pub branch: Option<BranchInfo>,
    /// Memory access, if this is a load or store.
    pub mem: Option<MemAccess>,
    /// CSR read value, if this is a CSR instruction — a "non-repeatable"
    /// result that the DEU must forward for replay (paper §II footnote).
    pub csr_read: Option<(u16, u64)>,
    /// CSR write side-effect `(addr, new value)`, if this is a CSR
    /// instruction. Replay drops CSR writes by design, but the recovery
    /// subsystem's commit-order shadow must track them so a rollback
    /// restores the full architectural state, CSRs included.
    pub csr_write: Option<(u16, u64)>,
    /// `true` for ECALL/EBREAK: enters the kernel, which forces an RCP
    /// (segment boundary) in MEEK.
    pub is_kernel_trap: bool,
    /// The OS-surface syscall performed, if this is an `ecall` and the
    /// surface is enabled (see [`crate::os`]). Syscalls never touch
    /// memory or clobber registers, so replay needs no extra records.
    pub syscall: Option<Syscall>,
    /// Register writeback performed (value read back after execution) —
    /// used by the DEU's commit-order shadow state.
    pub wb: Option<(WbDest, u64)>,
}

fn sext(v: u64, bits: u32) -> u64 {
    ((v << (64 - bits)) as i64 >> (64 - bits)) as u64
}

/// Executes one instruction at `st.pc`, updating `st` and `mem`.
///
/// # Errors
///
/// Returns [`Trap::IllegalInstruction`] if the fetched word does not
/// decode. All implemented instructions execute without trapping (the
/// executor masks memory addresses to natural alignment; the workload
/// generator only emits aligned accesses).
pub fn step<B: Bus>(st: &mut ArchState, mem: &mut B) -> Result<Retired, Trap> {
    let pc = st.pc;
    let raw = mem.fetch(pc);
    let inst = decode(raw).map_err(|e| Trap::from((pc, e)))?;
    Ok(execute(st, mem, pc, raw, inst))
}

/// Executes an already-decoded instruction (used by [`step`] and by the
/// little-core model, which decodes through its own Mini-Decoder).
pub fn execute<B: Bus>(st: &mut ArchState, mem: &mut B, pc: u64, raw: u32, inst: Inst) -> Retired {
    let mut next_pc = pc.wrapping_add(4);
    let mut branch = None;
    let mut mem_access = None;
    let mut csr_read = None;
    let mut csr_write = None;
    let mut is_kernel_trap = false;
    let mut syscall = None;

    match inst {
        Inst::Lui { rd, imm } => st.set_x(rd, ((imm as i64) << 12) as u64),
        Inst::Auipc { rd, imm } => st.set_x(rd, pc.wrapping_add(((imm as i64) << 12) as u64)),
        Inst::Jal { rd, offset } => {
            let target = pc.wrapping_add(offset as i64 as u64);
            st.set_x(rd, pc.wrapping_add(4));
            next_pc = target;
            branch =
                Some(BranchInfo { taken: true, target, is_conditional: false, is_indirect: false });
        }
        Inst::Jalr { rd, rs1, offset } => {
            let target = st.x(rs1).wrapping_add(offset as i64 as u64) & !1;
            st.set_x(rd, pc.wrapping_add(4));
            next_pc = target;
            branch =
                Some(BranchInfo { taken: true, target, is_conditional: false, is_indirect: true });
        }
        Inst::Branch { op, rs1, rs2, offset } => {
            let (a, b) = (st.x(rs1), st.x(rs2));
            let taken = match op {
                BranchOp::Beq => a == b,
                BranchOp::Bne => a != b,
                BranchOp::Blt => (a as i64) < (b as i64),
                BranchOp::Bge => (a as i64) >= (b as i64),
                BranchOp::Bltu => a < b,
                BranchOp::Bgeu => a >= b,
            };
            let target = pc.wrapping_add(offset as i64 as u64);
            if taken {
                next_pc = target;
            }
            branch = Some(BranchInfo { taken, target, is_conditional: true, is_indirect: false });
        }
        Inst::Load { op, rd, rs1, offset } => {
            let size = op.size();
            let addr = st.x(rs1).wrapping_add(offset as i64 as u64) & !(size as u64 - 1);
            let v = mem.read(addr, size);
            let v = match op {
                LoadOp::Lb => sext(v, 8),
                LoadOp::Lh => sext(v, 16),
                LoadOp::Lw => sext(v, 32),
                LoadOp::Ld | LoadOp::Lbu | LoadOp::Lhu | LoadOp::Lwu => v,
            };
            st.set_x(rd, v);
            mem_access = Some(MemAccess { addr, size, data: v, is_store: false });
        }
        Inst::Store { op, rs1, rs2, offset } => {
            let size = op.size();
            let addr = st.x(rs1).wrapping_add(offset as i64 as u64) & !(size as u64 - 1);
            let mask = if size == 8 { u64::MAX } else { (1u64 << (8 * size)) - 1 };
            let data = st.x(rs2) & mask;
            mem.write(addr, size, data);
            mem_access = Some(MemAccess { addr, size, data, is_store: true });
        }
        Inst::AluImm { op, rd, rs1, imm } => {
            let a = st.x(rs1);
            let i = imm as i64 as u64;
            let v = match op {
                AluImmOp::Addi => a.wrapping_add(i),
                AluImmOp::Slti => ((a as i64) < (i as i64)) as u64,
                AluImmOp::Sltiu => (a < i) as u64,
                AluImmOp::Xori => a ^ i,
                AluImmOp::Ori => a | i,
                AluImmOp::Andi => a & i,
                AluImmOp::Slli => a << (imm & 0x3F),
                AluImmOp::Srli => a >> (imm & 0x3F),
                AluImmOp::Srai => ((a as i64) >> (imm & 0x3F)) as u64,
                AluImmOp::Addiw => sext(a.wrapping_add(i) & 0xFFFF_FFFF, 32),
                AluImmOp::Slliw => sext((a as u32 as u64) << (imm & 0x1F) & 0xFFFF_FFFF, 32),
                AluImmOp::Srliw => sext((a as u32 >> (imm & 0x1F)) as u64, 32),
                AluImmOp::Sraiw => ((a as i32) >> (imm & 0x1F)) as i64 as u64,
            };
            st.set_x(rd, v);
        }
        Inst::Alu { op, rd, rs1, rs2 } => {
            let (a, b) = (st.x(rs1), st.x(rs2));
            let v = match op {
                AluOp::Add => a.wrapping_add(b),
                AluOp::Sub => a.wrapping_sub(b),
                AluOp::Sll => a << (b & 0x3F),
                AluOp::Slt => ((a as i64) < (b as i64)) as u64,
                AluOp::Sltu => (a < b) as u64,
                AluOp::Xor => a ^ b,
                AluOp::Srl => a >> (b & 0x3F),
                AluOp::Sra => ((a as i64) >> (b & 0x3F)) as u64,
                AluOp::Or => a | b,
                AluOp::And => a & b,
                AluOp::Addw => sext(a.wrapping_add(b) & 0xFFFF_FFFF, 32),
                AluOp::Subw => sext(a.wrapping_sub(b) & 0xFFFF_FFFF, 32),
                AluOp::Sllw => sext(((a as u32) << (b & 0x1F)) as u64, 32),
                AluOp::Srlw => sext((a as u32 >> (b & 0x1F)) as u64, 32),
                AluOp::Sraw => ((a as i32) >> (b & 0x1F)) as i64 as u64,
            };
            st.set_x(rd, v);
        }
        Inst::MulDiv { op, rd, rs1, rs2 } => {
            let (a, b) = (st.x(rs1), st.x(rs2));
            let v = muldiv(op, a, b);
            st.set_x(rd, v);
        }
        Inst::Fld { rd, rs1, offset } => {
            let addr = st.x(rs1).wrapping_add(offset as i64 as u64) & !7;
            let v = mem.read(addr, 8);
            st.set_f(rd, v);
            mem_access = Some(MemAccess { addr, size: 8, data: v, is_store: false });
        }
        Inst::Fsd { rs1, rs2, offset } => {
            let addr = st.x(rs1).wrapping_add(offset as i64 as u64) & !7;
            let data = st.f(rs2);
            mem.write(addr, 8, data);
            mem_access = Some(MemAccess { addr, size: 8, data, is_store: true });
        }
        Inst::Fp { op, rd, rs1, rs2 } => {
            let (a, b) = (f64::from_bits(st.f(rs1)), f64::from_bits(st.f(rs2)));
            let v = match op {
                FpOp::FaddD => a + b,
                FpOp::FsubD => a - b,
                FpOp::FmulD => a * b,
                FpOp::FdivD => a / b,
                FpOp::FsqrtD => a.sqrt(),
                FpOp::FsgnjD => a.copysign(b),
                FpOp::FminD => a.min(b),
                FpOp::FmaxD => a.max(b),
            };
            st.set_f(rd, v.to_bits());
        }
        Inst::FpCmp { op, rd, rs1, rs2 } => {
            let (a, b) = (f64::from_bits(st.f(rs1)), f64::from_bits(st.f(rs2)));
            let v = match op {
                FpCmpOp::FeqD => (a == b) as u64,
                FpCmpOp::FltD => (a < b) as u64,
                FpCmpOp::FleD => (a <= b) as u64,
            };
            st.set_x(rd, v);
        }
        Inst::FmaddD { rd, rs1, rs2, rs3 } => {
            let (a, b, c) =
                (f64::from_bits(st.f(rs1)), f64::from_bits(st.f(rs2)), f64::from_bits(st.f(rs3)));
            st.set_f(rd, a.mul_add(b, c).to_bits());
        }
        Inst::FcvtDL { rd, rs1 } => st.set_f(rd, (st.x(rs1) as i64 as f64).to_bits()),
        Inst::FcvtLD { rd, rs1 } => {
            let v = f64::from_bits(st.f(rs1));
            // RISC-V FCVT.L.D saturating semantics (NaN -> i64::MAX).
            let out = if v.is_nan() || v >= i64::MAX as f64 {
                i64::MAX
            } else if v <= i64::MIN as f64 {
                i64::MIN
            } else {
                v as i64
            };
            st.set_x(rd, out as u64);
        }
        Inst::FmvXD { rd, rs1 } => st.set_x(rd, st.f(rs1)),
        Inst::FmvDX { rd, rs1 } => st.set_f(rd, st.x(rs1)),
        Inst::Csr { op, rd, rs1, csr } if csr == CSR_INSTRET && st.csr(CSR_OS_ENABLE) != 0 => {
            // With the OS surface enabled, 0xC02 is the retired-
            // instruction counter: reads return the count, writes are
            // dropped. The read value is forwarded for replay like any
            // other non-repeatable CSR result; there is no write
            // side-effect for the recovery shadow to track (the counter
            // is rewound by the rollback itself).
            let old = st.instret();
            let _ = (op, rs1);
            st.set_x(rd, old);
            csr_read = Some((csr, old));
        }
        Inst::Csr { op, rd, rs1, csr } => {
            let old = st.csr(csr);
            let operand = match op {
                CsrOp::Rw | CsrOp::Rs | CsrOp::Rc => st.x(rs1),
                // Immediate forms use the rs1 field as a 5-bit zimm.
                CsrOp::Rwi | CsrOp::Rsi | CsrOp::Rci => rs1.index() as u64,
            };
            let new = match op {
                CsrOp::Rw | CsrOp::Rwi => operand,
                CsrOp::Rs | CsrOp::Rsi => old | operand,
                CsrOp::Rc | CsrOp::Rci => old & !operand,
            };
            st.set_csr(csr, new);
            st.set_x(rd, old);
            csr_read = Some((csr, old));
            csr_write = Some((csr, new));
        }
        Inst::Fence => {}
        Inst::Ecall => {
            is_kernel_trap = true;
            if st.csr(CSR_OS_ENABLE) != 0 {
                match st.x(Reg::X17) {
                    SYS_EXIT => {
                        syscall = Some(Syscall::Exit { code: st.x(Reg::X10) });
                        next_pc = HALT_PC;
                        branch = Some(BranchInfo {
                            taken: true,
                            target: HALT_PC,
                            is_conditional: false,
                            is_indirect: true,
                        });
                    }
                    SYS_PUTCHAR => {
                        syscall = Some(Syscall::Putchar { byte: st.x(Reg::X10) as u8 });
                    }
                    // Unknown syscall numbers are no-ops (still kernel
                    // traps, so they still force an RCP boundary).
                    _ => {}
                }
            }
        }
        Inst::Ebreak => is_kernel_trap = true,
        Inst::Meek(op) => match op {
            // Functional semantics of the MEEK ops are system-level; the
            // MSU (little core) and OS model give them real behaviour.
            // Standalone functional execution treats them as register
            // no-ops so programs containing them remain executable.
            MeekOp::LJal { rs1 } => {
                let target = st.x(rs1) & !1;
                next_pc = target;
                branch = Some(BranchInfo {
                    taken: true,
                    target,
                    is_conditional: false,
                    is_indirect: true,
                });
            }
            MeekOp::LRslt { rd } => st.set_x(rd, 1),
            _ => {}
        },
    }

    st.pc = next_pc;
    st.bump_instret();
    let wb = if let Some(rd) = inst.int_dest() {
        Some((WbDest::Int(rd), st.x(rd)))
    } else {
        inst.fp_dest().map(|rd| (WbDest::Fp(rd), st.f(rd)))
    };
    Retired {
        pc,
        raw,
        inst,
        class: inst.class(),
        next_pc,
        branch,
        mem: mem_access,
        csr_read,
        csr_write,
        is_kernel_trap,
        syscall,
        wb,
    }
}

fn muldiv(op: MulDivOp, a: u64, b: u64) -> u64 {
    match op {
        MulDivOp::Mul => a.wrapping_mul(b),
        MulDivOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        MulDivOp::Mulhsu => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
        MulDivOp::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
        MulDivOp::Div => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                u64::MAX
            } else if a == i64::MIN && b == -1 {
                a as u64
            } else {
                (a / b) as u64
            }
        }
        MulDivOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        MulDivOp::Rem => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                a as u64
            } else if a == i64::MIN && b == -1 {
                0
            } else {
                (a % b) as u64
            }
        }
        MulDivOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        MulDivOp::Mulw => sext((a as u32).wrapping_mul(b as u32) as u64, 32),
        MulDivOp::Divw => {
            let (a, b) = (a as i32, b as i32);
            let v = if b == 0 {
                -1
            } else if a == i32::MIN && b == -1 {
                a
            } else {
                a / b
            };
            v as i64 as u64
        }
        MulDivOp::Divuw => {
            let (a, b) = (a as u32, b as u32);
            sext(a.checked_div(b).unwrap_or(u32::MAX) as u64, 32)
        }
        MulDivOp::Remw => {
            let (a, b) = (a as i32, b as i32);
            let v = if b == 0 {
                a
            } else if a == i32::MIN && b == -1 {
                0
            } else {
                a % b
            };
            v as i64 as u64
        }
        MulDivOp::Remuw => {
            let (a, b) = (a as u32, b as u32);
            let v = if b == 0 { a } else { a % b };
            sext(v as u64, 32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::inst::StoreOp;
    use crate::mem::SparseMemory;
    use crate::os::{Syscall, CSR_INSTRET, CSR_OS_ENABLE, HALT_PC, SYS_EXIT, SYS_PUTCHAR};

    fn run(prog: &[Inst]) -> (ArchState, SparseMemory) {
        let mut mem = SparseMemory::new();
        let words: Vec<u32> = prog.iter().map(encode).collect();
        mem.load_program(0x1000, &words);
        let mut st = ArchState::new(0x1000);
        for _ in 0..prog.len() {
            step(&mut st, &mut mem).expect("no trap");
        }
        (st, mem)
    }

    #[test]
    fn arith_basics() {
        let (st, _) = run(&[
            Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X1, rs1: Reg::X0, imm: 100 },
            Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X2, rs1: Reg::X0, imm: -3 },
            Inst::Alu { op: AluOp::Add, rd: Reg::X3, rs1: Reg::X1, rs2: Reg::X2 },
            Inst::Alu { op: AluOp::Sub, rd: Reg::X4, rs1: Reg::X1, rs2: Reg::X2 },
            Inst::Alu { op: AluOp::Sltu, rd: Reg::X5, rs1: Reg::X1, rs2: Reg::X2 },
            Inst::Alu { op: AluOp::Slt, rd: Reg::X6, rs1: Reg::X2, rs2: Reg::X1 },
        ]);
        assert_eq!(st.x(Reg::X3), 97);
        assert_eq!(st.x(Reg::X4), 103);
        assert_eq!(st.x(Reg::X5), 1); // -3 as unsigned is huge
        assert_eq!(st.x(Reg::X6), 1);
    }

    #[test]
    fn word_ops_sign_extend() {
        let (st, _) = run(&[
            // lui x1, 0x80000 — decoded imm is the sign-extended 20-bit field
            Inst::Lui { rd: Reg::X1, imm: -524288 },
            Inst::AluImm { op: AluImmOp::Addiw, rd: Reg::X2, rs1: Reg::X1, imm: 0 },
        ]);
        assert_eq!(st.x(Reg::X1), 0xFFFF_FFFF_8000_0000);
        assert_eq!(st.x(Reg::X2), 0xFFFF_FFFF_8000_0000);
    }

    #[test]
    fn div_rem_edge_cases() {
        assert_eq!(muldiv(MulDivOp::Div, 7, 0), u64::MAX);
        assert_eq!(muldiv(MulDivOp::Div, i64::MIN as u64, -1i64 as u64), i64::MIN as u64);
        assert_eq!(muldiv(MulDivOp::Rem, 7, 0), 7);
        assert_eq!(muldiv(MulDivOp::Rem, i64::MIN as u64, -1i64 as u64), 0);
        assert_eq!(muldiv(MulDivOp::Divu, 7, 0), u64::MAX);
        assert_eq!(muldiv(MulDivOp::Remu, 7, 0), 7);
        assert_eq!(muldiv(MulDivOp::Div, -7i64 as u64, 2), (-3i64) as u64);
        assert_eq!(muldiv(MulDivOp::Rem, -7i64 as u64, 2), (-1i64) as u64);
        assert_eq!(
            muldiv(MulDivOp::Divw, i32::MIN as u32 as u64, -1i64 as u64),
            i32::MIN as i64 as u64
        );
        assert_eq!(muldiv(MulDivOp::Divw, 10, 0), u64::MAX);
        assert_eq!(muldiv(MulDivOp::Mulhu, u64::MAX, u64::MAX), u64::MAX - 1);
        assert_eq!(muldiv(MulDivOp::Mulh, -1i64 as u64, -1i64 as u64), 0);
    }

    #[test]
    fn loads_and_stores() {
        let (st, mem) = run(&[
            Inst::Lui { rd: Reg::X1, imm: 0x10 }, // x1 = 0x10000
            Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X2, rs1: Reg::X0, imm: -1 },
            Inst::Store { op: StoreOp::Sd, rs1: Reg::X1, rs2: Reg::X2, offset: 0 },
            Inst::Load { op: LoadOp::Lw, rd: Reg::X3, rs1: Reg::X1, offset: 0 },
            Inst::Load { op: LoadOp::Lwu, rd: Reg::X4, rs1: Reg::X1, offset: 0 },
            Inst::Load { op: LoadOp::Lbu, rd: Reg::X5, rs1: Reg::X1, offset: 3 },
        ]);
        let mut mem = mem;
        assert_eq!(mem.read(0x10000, 8), u64::MAX);
        assert_eq!(st.x(Reg::X3), u64::MAX); // lw sign-extends
        assert_eq!(st.x(Reg::X4), 0xFFFF_FFFF); // lwu zero-extends
        assert_eq!(st.x(Reg::X5), 0xFF);
    }

    #[test]
    fn retired_mem_record() {
        let mut mem = SparseMemory::new();
        mem.load_program(
            0x1000,
            &[
                encode(&Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X1, rs1: Reg::X0, imm: 0x40 }),
                encode(&Inst::Store { op: StoreOp::Sw, rs1: Reg::X1, rs2: Reg::X1, offset: 4 }),
                encode(&Inst::Load { op: LoadOp::Lw, rd: Reg::X2, rs1: Reg::X1, offset: 4 }),
            ],
        );
        let mut st = ArchState::new(0x1000);
        step(&mut st, &mut mem).unwrap();
        let s = step(&mut st, &mut mem).unwrap();
        assert_eq!(s.mem, Some(MemAccess { addr: 0x44, size: 4, data: 0x40, is_store: true }));
        let l = step(&mut st, &mut mem).unwrap();
        assert_eq!(l.mem, Some(MemAccess { addr: 0x44, size: 4, data: 0x40, is_store: false }));
        assert_eq!(l.class, ExecClass::Load);
    }

    #[test]
    fn branch_outcomes() {
        let mut mem = SparseMemory::new();
        mem.load_program(
            0x1000,
            &[
                encode(&Inst::Branch { op: BranchOp::Beq, rs1: Reg::X0, rs2: Reg::X0, offset: 8 }),
                encode(&Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X1, rs1: Reg::X0, imm: 1 }),
                encode(&Inst::Branch { op: BranchOp::Bne, rs1: Reg::X0, rs2: Reg::X0, offset: 8 }),
            ],
        );
        let mut st = ArchState::new(0x1000);
        let b = step(&mut st, &mut mem).unwrap();
        assert_eq!(
            b.branch,
            Some(BranchInfo {
                taken: true,
                target: 0x1008,
                is_conditional: true,
                is_indirect: false
            })
        );
        assert_eq!(st.pc, 0x1008);
        let nb = step(&mut st, &mut mem).unwrap();
        assert!(!nb.branch.unwrap().taken);
        assert_eq!(st.pc, 0x100C);
        assert_eq!(st.x(Reg::X1), 0); // skipped instruction never executed
    }

    #[test]
    fn jal_jalr_link() {
        let mut mem = SparseMemory::new();
        mem.load_program(
            0x1000,
            &[
                encode(&Inst::Jal { rd: Reg::X1, offset: 8 }),
                encode(&Inst::Ecall), // skipped
                encode(&Inst::Jalr { rd: Reg::X2, rs1: Reg::X1, offset: 4 }),
            ],
        );
        let mut st = ArchState::new(0x1000);
        step(&mut st, &mut mem).unwrap();
        assert_eq!(st.x(Reg::X1), 0x1004);
        assert_eq!(st.pc, 0x1008);
        let j = step(&mut st, &mut mem).unwrap();
        assert!(j.branch.unwrap().is_indirect);
        assert_eq!(st.pc, 0x1008); // x1 + 4 = 0x1008
        assert_eq!(st.x(Reg::X2), 0x100C);
    }

    #[test]
    fn csr_semantics_and_record() {
        let mut mem = SparseMemory::new();
        mem.load_program(
            0x1000,
            &[
                encode(&Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X1, rs1: Reg::X0, imm: 0xFF }),
                encode(&Inst::Csr { op: CsrOp::Rw, rd: Reg::X2, rs1: Reg::X1, csr: 0x340 }),
                encode(&Inst::Csr { op: CsrOp::Rc, rd: Reg::X3, rs1: Reg::X1, csr: 0x340 }),
                encode(&Inst::Csr { op: CsrOp::Rsi, rd: Reg::X4, rs1: Reg::X5, csr: 0x340 }),
            ],
        );
        let mut st = ArchState::new(0x1000);
        step(&mut st, &mut mem).unwrap();
        let w = step(&mut st, &mut mem).unwrap();
        assert_eq!(w.csr_read, Some((0x340, 0)));
        assert_eq!(st.csr(0x340), 0xFF);
        let c = step(&mut st, &mut mem).unwrap();
        assert_eq!(c.csr_read, Some((0x340, 0xFF)));
        assert_eq!(st.csr(0x340), 0);
        step(&mut st, &mut mem).unwrap();
        assert_eq!(st.csr(0x340), 5); // zimm = index of x5
    }

    #[test]
    fn ecall_marks_kernel_trap() {
        let mut mem = SparseMemory::new();
        mem.load_program(0x1000, &[encode(&Inst::Ecall)]);
        let mut st = ArchState::new(0x1000);
        let r = step(&mut st, &mut mem).unwrap();
        assert!(r.is_kernel_trap);
        assert!(r.syscall.is_none(), "OS surface is off by default");
        assert_eq!(st.pc, 0x1004);
    }

    #[test]
    fn ecall_exit_redirects_to_halt_when_enabled() {
        let mut mem = SparseMemory::new();
        mem.load_program(0x1000, &[encode(&Inst::Ecall)]);
        let mut st = ArchState::new(0x1000);
        st.set_csr(CSR_OS_ENABLE, 1);
        st.set_x(Reg::X17, SYS_EXIT);
        st.set_x(Reg::X10, 7);
        let r = step(&mut st, &mut mem).unwrap();
        assert!(r.is_kernel_trap);
        assert_eq!(r.syscall, Some(Syscall::Exit { code: 7 }));
        assert_eq!(r.next_pc, HALT_PC);
        assert_eq!(st.pc, HALT_PC);
        let b = r.branch.unwrap();
        assert!(b.taken && b.is_indirect && !b.is_conditional);
        assert_eq!(b.target, HALT_PC);
    }

    #[test]
    fn ecall_putchar_records_byte_without_side_effects() {
        let mut mem = SparseMemory::new();
        mem.load_program(0x1000, &[encode(&Inst::Ecall)]);
        let mut st = ArchState::new(0x1000);
        st.set_csr(CSR_OS_ENABLE, 1);
        st.set_x(Reg::X17, SYS_PUTCHAR);
        st.set_x(Reg::X10, 0x141); // only the low byte is the character
        let r = step(&mut st, &mut mem).unwrap();
        assert_eq!(r.syscall, Some(Syscall::Putchar { byte: 0x41 }));
        assert_eq!(r.mem, None, "syscalls must never touch memory");
        assert_eq!(st.pc, 0x1004);
        assert_eq!(st.x(Reg::X10), 0x141, "syscalls must not clobber registers");
    }

    #[test]
    fn ecall_unknown_number_is_noop_trap() {
        let mut mem = SparseMemory::new();
        mem.load_program(0x1000, &[encode(&Inst::Ecall)]);
        let mut st = ArchState::new(0x1000);
        st.set_csr(CSR_OS_ENABLE, 1);
        st.set_x(Reg::X17, 1234);
        let r = step(&mut st, &mut mem).unwrap();
        assert!(r.is_kernel_trap);
        assert!(r.syscall.is_none());
        assert_eq!(st.pc, 0x1004);
    }

    #[test]
    fn instret_csr_counts_retirements_when_enabled() {
        let mut mem = SparseMemory::new();
        mem.load_program(
            0x1000,
            &[
                encode(&Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X1, rs1: Reg::X0, imm: 1 }),
                encode(&Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X1, rs1: Reg::X1, imm: 1 }),
                encode(&Inst::Csr { op: CsrOp::Rs, rd: Reg::X2, rs1: Reg::X0, csr: CSR_INSTRET }),
                // A write attempt must be dropped, not stored.
                encode(&Inst::Csr { op: CsrOp::Rw, rd: Reg::X3, rs1: Reg::X1, csr: CSR_INSTRET }),
                encode(&Inst::Csr { op: CsrOp::Rs, rd: Reg::X4, rs1: Reg::X0, csr: CSR_INSTRET }),
            ],
        );
        let mut st = ArchState::new(0x1000);
        st.set_csr(CSR_OS_ENABLE, 1);
        for _ in 0..5 {
            step(&mut st, &mut mem).unwrap();
        }
        assert_eq!(st.x(Reg::X2), 2, "two instructions retired before the first read");
        assert_eq!(st.x(Reg::X3), 3);
        assert_eq!(st.x(Reg::X4), 4, "the csrrw must not have stored x1 into the counter");
        assert_eq!(st.instret(), 5);
    }

    #[test]
    fn instret_csr_is_plain_storage_when_disabled() {
        let mut mem = SparseMemory::new();
        mem.load_program(
            0x1000,
            &[
                encode(&Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X1, rs1: Reg::X0, imm: 9 }),
                encode(&Inst::Csr { op: CsrOp::Rw, rd: Reg::X2, rs1: Reg::X1, csr: CSR_INSTRET }),
                encode(&Inst::Csr { op: CsrOp::Rs, rd: Reg::X3, rs1: Reg::X0, csr: CSR_INSTRET }),
            ],
        );
        let mut st = ArchState::new(0x1000);
        for _ in 0..3 {
            step(&mut st, &mut mem).unwrap();
        }
        assert_eq!(st.x(Reg::X3), 9, "legacy CSR semantics must be untouched");
        assert_eq!(st.csr(CSR_INSTRET), 9);
    }

    #[test]
    fn fp_basics() {
        let mut mem = SparseMemory::new();
        let two = 2.0f64.to_bits();
        let three = 3.0f64.to_bits();
        mem.write(0x2000, 8, two);
        mem.write(0x2008, 8, three);
        mem.load_program(
            0x1000,
            &[
                encode(&Inst::Lui { rd: Reg::X1, imm: 2 }), // x1 = 0x2000
                encode(&Inst::Fld { rd: FReg::new(1), rs1: Reg::X1, offset: 0 }),
                encode(&Inst::Fld { rd: FReg::new(2), rs1: Reg::X1, offset: 8 }),
                encode(&Inst::Fp {
                    op: FpOp::FmulD,
                    rd: FReg::new(3),
                    rs1: FReg::new(1),
                    rs2: FReg::new(2),
                }),
                encode(&Inst::Fp {
                    op: FpOp::FdivD,
                    rd: FReg::new(4),
                    rs1: FReg::new(1),
                    rs2: FReg::new(2),
                }),
                encode(&Inst::FpCmp {
                    op: FpCmpOp::FltD,
                    rd: Reg::X2,
                    rs1: FReg::new(1),
                    rs2: FReg::new(2),
                }),
                encode(&Inst::FcvtLD { rd: Reg::X3, rs1: FReg::new(3) }),
            ],
        );
        let mut st = ArchState::new(0x1000);
        for _ in 0..7 {
            step(&mut st, &mut mem).unwrap();
        }
        assert_eq!(f64::from_bits(st.f(FReg::new(3))), 6.0);
        assert!((f64::from_bits(st.f(FReg::new(4))) - 2.0 / 3.0).abs() < 1e-15);
        assert_eq!(st.x(Reg::X2), 1);
        assert_eq!(st.x(Reg::X3), 6);
    }

    #[test]
    fn fcvt_saturation() {
        let mut st = ArchState::new(0);
        let mut mem = SparseMemory::new();
        st.set_f(FReg::new(1), f64::NAN.to_bits());
        let r = execute(&mut st, &mut mem, 0, 0, Inst::FcvtLD { rd: Reg::X1, rs1: FReg::new(1) });
        assert_eq!(st.x(Reg::X1), i64::MAX as u64);
        assert_eq!(r.class, ExecClass::FpAdd);
        st.set_f(FReg::new(1), 1e300f64.to_bits());
        execute(&mut st, &mut mem, 0, 0, Inst::FcvtLD { rd: Reg::X2, rs1: FReg::new(1) });
        assert_eq!(st.x(Reg::X2), i64::MAX as u64);
        st.set_f(FReg::new(1), (-1e300f64).to_bits());
        execute(&mut st, &mut mem, 0, 0, Inst::FcvtLD { rd: Reg::X3, rs1: FReg::new(1) });
        assert_eq!(st.x(Reg::X3), i64::MIN as u64);
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut mem = SparseMemory::new();
        mem.write(0x1000, 4, 0);
        let mut st = ArchState::new(0x1000);
        assert_eq!(step(&mut st, &mut mem), Err(Trap::IllegalInstruction { pc: 0x1000, word: 0 }));
    }

    #[test]
    fn meek_ljal_redirects() {
        let mut st = ArchState::new(0x1000);
        let mut mem = SparseMemory::new();
        st.set_x(Reg::X5, 0x4000);
        let r = execute(&mut st, &mut mem, 0x1000, 0, Inst::Meek(MeekOp::LJal { rs1: Reg::X5 }));
        assert_eq!(st.pc, 0x4000);
        assert!(r.branch.unwrap().is_indirect);
    }

    #[test]
    fn misaligned_addresses_are_masked() {
        let mut mem = SparseMemory::new();
        mem.write(0x100, 8, 0x1122_3344_5566_7788);
        let mut st = ArchState::new(0);
        st.set_x(Reg::X1, 0x103); // misaligned base for a word load
        execute(
            &mut st,
            &mut mem,
            0,
            0,
            Inst::Load { op: LoadOp::Lw, rd: Reg::X2, rs1: Reg::X1, offset: 0 },
        );
        // masked down to 0x100
        assert_eq!(st.x(Reg::X2), 0x5566_7788);
    }
}
