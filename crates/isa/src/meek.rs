//! The MEEK ISA extension (Table I of the paper).
//!
//! The seven custom instructions occupy the *custom-0* major opcode
//! (`0b000_1011`), with `funct3` selecting the operation. The big-core
//! instructions (`b.*`) and `l.mode` are privileged (kernel mode); the
//! remaining little-core instructions run in user mode.
//!
//! | Instruction        | Priv | Description                                          |
//! |--------------------|------|------------------------------------------------------|
//! | `b.hook rs1, rs2`  | 1    | Hook big core `rs1` with little core `rs2`.          |
//! | `b.check rs1`      | 1    | Enable/disable checking capacity (the DEU).          |
//! | `l.mode rs1, rs2`  | 1    | Switch little core `rs1`'s mode to `rs2`.            |
//! | `l.record rs1`     | 0    | Record architectural registers to address `rs1`.     |
//! | `l.apply rs1`      | 0    | Apply architectural registers from address `rs1`.    |
//! | `l.jal rs1`        | 0    | Jump to `rs1` (PC of main thread).                   |
//! | `l.rslt rd`        | 0    | Return the check results.                            |

use crate::reg::Reg;
use std::fmt;

/// Operational mode of a little core, set by `l.mode` (Fig. 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoreMode {
    /// Running ordinary application threads; memory goes to the cache.
    #[default]
    Application,
    /// Running a checker thread; memory results come from the LSL.
    Check,
}

/// A decoded MEEK-ISA instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeekOp {
    /// `b.hook rs1, rs2` — associate big core (id in `rs1`) with little core
    /// (id in `rs2`). Privileged.
    BHook { rs1: Reg, rs2: Reg },
    /// `b.check rs1` — enable (`rs1 != 0`) or disable the DEU. Privileged.
    BCheck { rs1: Reg },
    /// `l.mode rs1, rs2` — switch little core `rs1` to mode `rs2`
    /// (0 = application, 1 = check). Privileged.
    LMode { rs1: Reg, rs2: Reg },
    /// `l.record rs1` — snapshot architectural registers to address `rs1`.
    LRecord { rs1: Reg },
    /// `l.apply rs1` — overwrite architectural registers from address `rs1`
    /// (in check mode, from the LSL's SRCP record).
    LApply { rs1: Reg },
    /// `l.jal rs1` — redirect the PC to the value in `rs1` (the main
    /// thread's segment start PC). Treated as branch-like by the pipeline.
    LJal { rs1: Reg },
    /// `l.rslt rd` — write the check result (1 = pass, 0 = mismatch) to `rd`.
    LRslt { rd: Reg },
}

impl MeekOp {
    /// The `funct3` minor opcode used in the binary encoding.
    pub fn funct3(self) -> u8 {
        match self {
            MeekOp::BHook { .. } => 0,
            MeekOp::BCheck { .. } => 1,
            MeekOp::LMode { .. } => 2,
            MeekOp::LRecord { .. } => 3,
            MeekOp::LApply { .. } => 4,
            MeekOp::LJal { .. } => 5,
            MeekOp::LRslt { .. } => 6,
        }
    }

    /// Whether the instruction requires kernel privilege (Table I).
    ///
    /// `b.hook`/`b.check` can cause contention on the little cores and
    /// `l.mode` can cause erroneous execution from unintended memory
    /// accesses, so all three are privileged and reached via OS syscall.
    pub fn is_privileged(self) -> bool {
        matches!(self, MeekOp::BHook { .. } | MeekOp::BCheck { .. } | MeekOp::LMode { .. })
    }

    /// Mnemonic string, e.g. `"b.hook"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MeekOp::BHook { .. } => "b.hook",
            MeekOp::BCheck { .. } => "b.check",
            MeekOp::LMode { .. } => "l.mode",
            MeekOp::LRecord { .. } => "l.record",
            MeekOp::LApply { .. } => "l.apply",
            MeekOp::LJal { .. } => "l.jal",
            MeekOp::LRslt { .. } => "l.rslt",
        }
    }

    /// Integer destination register, if any (`l.rslt` only).
    pub fn int_dest(self) -> Option<Reg> {
        match self {
            MeekOp::LRslt { rd } => Some(rd),
            _ => None,
        }
    }

    /// Integer source registers.
    pub fn int_srcs(self) -> [Option<Reg>; 2] {
        match self {
            MeekOp::BHook { rs1, rs2 } | MeekOp::LMode { rs1, rs2 } => [Some(rs1), Some(rs2)],
            MeekOp::BCheck { rs1 }
            | MeekOp::LRecord { rs1 }
            | MeekOp::LApply { rs1 }
            | MeekOp::LJal { rs1 } => [Some(rs1), None],
            MeekOp::LRslt { .. } => [None, None],
        }
    }
}

impl fmt::Display for MeekOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MeekOp::BHook { rs1, rs2 } => write!(f, "b.hook {rs1}, {rs2}"),
            MeekOp::BCheck { rs1 } => write!(f, "b.check {rs1}"),
            MeekOp::LMode { rs1, rs2 } => write!(f, "l.mode {rs1}, {rs2}"),
            MeekOp::LRecord { rs1 } => write!(f, "l.record {rs1}"),
            MeekOp::LApply { rs1 } => write!(f, "l.apply {rs1}"),
            MeekOp::LJal { rs1 } => write!(f, "l.jal {rs1}"),
            MeekOp::LRslt { rd } => write!(f, "l.rslt {rd}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privilege_matches_table1() {
        assert!(MeekOp::BHook { rs1: Reg::X1, rs2: Reg::X2 }.is_privileged());
        assert!(MeekOp::BCheck { rs1: Reg::X1 }.is_privileged());
        assert!(MeekOp::LMode { rs1: Reg::X1, rs2: Reg::X2 }.is_privileged());
        assert!(!MeekOp::LRecord { rs1: Reg::X1 }.is_privileged());
        assert!(!MeekOp::LApply { rs1: Reg::X1 }.is_privileged());
        assert!(!MeekOp::LJal { rs1: Reg::X1 }.is_privileged());
        assert!(!MeekOp::LRslt { rd: Reg::X1 }.is_privileged());
    }

    #[test]
    fn funct3_unique() {
        let ops = [
            MeekOp::BHook { rs1: Reg::X1, rs2: Reg::X2 },
            MeekOp::BCheck { rs1: Reg::X1 },
            MeekOp::LMode { rs1: Reg::X1, rs2: Reg::X2 },
            MeekOp::LRecord { rs1: Reg::X1 },
            MeekOp::LApply { rs1: Reg::X1 },
            MeekOp::LJal { rs1: Reg::X1 },
            MeekOp::LRslt { rd: Reg::X1 },
        ];
        let mut seen = std::collections::HashSet::new();
        for op in ops {
            assert!(seen.insert(op.funct3()), "duplicate funct3 for {op}");
        }
    }

    #[test]
    fn display() {
        assert_eq!(MeekOp::BHook { rs1: Reg::X10, rs2: Reg::X11 }.to_string(), "b.hook a0, a1");
        assert_eq!(MeekOp::LRslt { rd: Reg::X10 }.to_string(), "l.rslt a0");
    }

    #[test]
    fn dests_and_srcs() {
        assert_eq!(MeekOp::LRslt { rd: Reg::X5 }.int_dest(), Some(Reg::X5));
        assert_eq!(MeekOp::LJal { rs1: Reg::X6 }.int_srcs(), [Some(Reg::X6), None]);
        assert_eq!(MeekOp::LJal { rs1: Reg::X6 }.int_dest(), None);
    }
}
