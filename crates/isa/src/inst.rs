//! Decoded instruction representation and execution classes.

use crate::meek::MeekOp;
use crate::reg::{FReg, Reg};

/// Conditional branch comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BranchOp {
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
}

/// Load width/signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum LoadOp {
    Lb,
    Lh,
    Lw,
    Ld,
    Lbu,
    Lhu,
    Lwu,
}

impl LoadOp {
    /// Access size in bytes.
    pub fn size(self) -> u8 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw | LoadOp::Lwu => 4,
            LoadOp::Ld => 8,
        }
    }
}

/// Store width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum StoreOp {
    Sb,
    Sh,
    Sw,
    Sd,
}

impl StoreOp {
    /// Access size in bytes.
    pub fn size(self) -> u8 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
            StoreOp::Sd => 8,
        }
    }
}

/// Register-register integer ALU operation (OP / OP-32 major opcodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Addw,
    Subw,
    Sllw,
    Srlw,
    Sraw,
}

/// Register-immediate integer ALU operation (OP-IMM / OP-IMM-32).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluImmOp {
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    Addiw,
    Slliw,
    Srliw,
    Sraiw,
}

/// RV64M multiply/divide operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum MulDivOp {
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    Mulw,
    Divw,
    Divuw,
    Remw,
    Remuw,
}

impl MulDivOp {
    /// Whether this is a divider-path operation (DIV/REM family).
    pub fn is_div(self) -> bool {
        matches!(
            self,
            MulDivOp::Div
                | MulDivOp::Divu
                | MulDivOp::Rem
                | MulDivOp::Remu
                | MulDivOp::Divw
                | MulDivOp::Divuw
                | MulDivOp::Remw
                | MulDivOp::Remuw
        )
    }
}

/// Double-precision floating-point compute operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FpOp {
    FaddD,
    FsubD,
    FmulD,
    FdivD,
    FsqrtD,
    FsgnjD,
    FminD,
    FmaxD,
}

/// Floating-point compare (writes an integer register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FpCmpOp {
    FeqD,
    FltD,
    FleD,
}

/// CSR access operation (Zicsr).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CsrOp {
    Rw,
    Rs,
    Rc,
    Rwi,
    Rsi,
    Rci,
}

/// A decoded RISC-V (plus MEEK-ISA) instruction.
///
/// The variants cover RV64IM, Zicsr, the double-precision subset the
/// workload generator uses, and the seven MEEK custom instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Inst {
    Lui {
        rd: Reg,
        imm: i32,
    },
    Auipc {
        rd: Reg,
        imm: i32,
    },
    Jal {
        rd: Reg,
        offset: i32,
    },
    Jalr {
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    Branch {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    Load {
        op: LoadOp,
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    Store {
        op: StoreOp,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    AluImm {
        op: AluImmOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    Alu {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    MulDiv {
        op: MulDivOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Fld {
        rd: FReg,
        rs1: Reg,
        offset: i32,
    },
    Fsd {
        rs1: Reg,
        rs2: FReg,
        offset: i32,
    },
    Fp {
        op: FpOp,
        rd: FReg,
        rs1: FReg,
        rs2: FReg,
    },
    FpCmp {
        op: FpCmpOp,
        rd: Reg,
        rs1: FReg,
        rs2: FReg,
    },
    FmaddD {
        rd: FReg,
        rs1: FReg,
        rs2: FReg,
        rs3: FReg,
    },
    FcvtDL {
        rd: FReg,
        rs1: Reg,
    },
    FcvtLD {
        rd: Reg,
        rs1: FReg,
    },
    FmvXD {
        rd: Reg,
        rs1: FReg,
    },
    FmvDX {
        rd: FReg,
        rs1: Reg,
    },
    Csr {
        op: CsrOp,
        rd: Reg,
        rs1: Reg,
        csr: u16,
    },
    Fence,
    Ecall,
    Ebreak,
    /// A MEEK-ISA custom instruction (Table I of the paper).
    Meek(MeekOp),
}

/// Coarse execution class used by the timing models to pick a functional
/// unit and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ExecClass {
    IntAlu,
    IntMul,
    IntDiv,
    FpAdd,
    FpMul,
    FpDiv,
    Load,
    Store,
    Branch,
    Jump,
    Csr,
    System,
    Meek,
}

impl Inst {
    /// The execution class of this instruction, used for functional-unit
    /// selection and latency lookup by both core timing models.
    pub fn class(&self) -> ExecClass {
        match self {
            Inst::Lui { .. } | Inst::Auipc { .. } | Inst::Alu { .. } | Inst::AluImm { .. } => {
                ExecClass::IntAlu
            }
            Inst::Jal { .. } | Inst::Jalr { .. } => ExecClass::Jump,
            Inst::Branch { .. } => ExecClass::Branch,
            Inst::Load { .. } | Inst::Fld { .. } => ExecClass::Load,
            Inst::Store { .. } | Inst::Fsd { .. } => ExecClass::Store,
            Inst::MulDiv { op, .. } => {
                if op.is_div() {
                    ExecClass::IntDiv
                } else {
                    ExecClass::IntMul
                }
            }
            Inst::Fp { op, .. } => match op {
                FpOp::FdivD | FpOp::FsqrtD => ExecClass::FpDiv,
                FpOp::FmulD => ExecClass::FpMul,
                _ => ExecClass::FpAdd,
            },
            Inst::FmaddD { .. } => ExecClass::FpMul,
            Inst::FpCmp { .. }
            | Inst::FcvtDL { .. }
            | Inst::FcvtLD { .. }
            | Inst::FmvXD { .. }
            | Inst::FmvDX { .. } => ExecClass::FpAdd,
            Inst::Csr { .. } => ExecClass::Csr,
            Inst::Fence | Inst::Ecall | Inst::Ebreak => ExecClass::System,
            Inst::Meek(_) => ExecClass::Meek,
        }
    }

    /// Whether this instruction reads or writes data memory.
    pub fn is_mem(&self) -> bool {
        matches!(self.class(), ExecClass::Load | ExecClass::Store)
    }

    /// Whether this is a control-flow instruction (branch or jump).
    pub fn is_control(&self) -> bool {
        matches!(self.class(), ExecClass::Branch | ExecClass::Jump)
    }

    /// Integer destination register, if the instruction writes one
    /// (excluding writes to `x0`, which are architectural no-ops but are
    /// still reported here; the executor discards them).
    pub fn int_dest(&self) -> Option<Reg> {
        match *self {
            Inst::Lui { rd, .. }
            | Inst::Auipc { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::Alu { rd, .. }
            | Inst::MulDiv { rd, .. }
            | Inst::FpCmp { rd, .. }
            | Inst::FcvtLD { rd, .. }
            | Inst::FmvXD { rd, .. }
            | Inst::Csr { rd, .. } => Some(rd),
            Inst::Meek(op) => op.int_dest(),
            _ => None,
        }
    }

    /// Integer source registers (up to two).
    pub fn int_srcs(&self) -> [Option<Reg>; 2] {
        match *self {
            Inst::Jalr { rs1, .. }
            | Inst::Load { rs1, .. }
            | Inst::AluImm { rs1, .. }
            | Inst::Fld { rs1, .. }
            | Inst::FcvtDL { rs1, .. }
            | Inst::FmvDX { rs1, .. }
            | Inst::Csr { rs1, .. } => [Some(rs1), None],
            Inst::Branch { rs1, rs2, .. }
            | Inst::Alu { rs1, rs2, .. }
            | Inst::MulDiv { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Inst::Store { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Inst::Fsd { rs1, .. } => [Some(rs1), None],
            Inst::Meek(op) => op.int_srcs(),
            _ => [None, None],
        }
    }

    /// Floating-point source registers (up to three).
    pub fn fp_srcs(&self) -> [Option<FReg>; 3] {
        match *self {
            Inst::Fp { rs1, rs2, .. } | Inst::FpCmp { rs1, rs2, .. } => {
                [Some(rs1), Some(rs2), None]
            }
            Inst::FmaddD { rs1, rs2, rs3, .. } => [Some(rs1), Some(rs2), Some(rs3)],
            Inst::Fsd { rs2, .. } => [Some(rs2), None, None],
            Inst::FcvtLD { rs1, .. } | Inst::FmvXD { rs1, .. } => [Some(rs1), None, None],
            _ => [None, None, None],
        }
    }

    /// Floating-point destination register, if any.
    pub fn fp_dest(&self) -> Option<FReg> {
        match *self {
            Inst::Fld { rd, .. }
            | Inst::Fp { rd, .. }
            | Inst::FmaddD { rd, .. }
            | Inst::FcvtDL { rd, .. }
            | Inst::FmvDX { rd, .. } => Some(rd),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes() {
        let addi = Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X1, rs1: Reg::X0, imm: 1 };
        assert_eq!(addi.class(), ExecClass::IntAlu);
        let div = Inst::MulDiv { op: MulDivOp::Div, rd: Reg::X1, rs1: Reg::X2, rs2: Reg::X3 };
        assert_eq!(div.class(), ExecClass::IntDiv);
        let mul = Inst::MulDiv { op: MulDivOp::Mulw, rd: Reg::X1, rs1: Reg::X2, rs2: Reg::X3 };
        assert_eq!(mul.class(), ExecClass::IntMul);
        let fdiv =
            Inst::Fp { op: FpOp::FdivD, rd: FReg::new(1), rs1: FReg::new(2), rs2: FReg::new(3) };
        assert_eq!(fdiv.class(), ExecClass::FpDiv);
        let ld = Inst::Load { op: LoadOp::Ld, rd: Reg::X1, rs1: Reg::X2, offset: 0 };
        assert_eq!(ld.class(), ExecClass::Load);
        assert!(ld.is_mem());
        let b = Inst::Branch { op: BranchOp::Beq, rs1: Reg::X1, rs2: Reg::X2, offset: 8 };
        assert!(b.is_control());
        assert_eq!(b.int_dest(), None);
    }

    #[test]
    fn sizes() {
        assert_eq!(LoadOp::Lb.size(), 1);
        assert_eq!(LoadOp::Lhu.size(), 2);
        assert_eq!(LoadOp::Lwu.size(), 4);
        assert_eq!(LoadOp::Ld.size(), 8);
        assert_eq!(StoreOp::Sb.size(), 1);
        assert_eq!(StoreOp::Sd.size(), 8);
    }

    #[test]
    fn srcs_and_dests() {
        let st = Inst::Store { op: StoreOp::Sd, rs1: Reg::X2, rs2: Reg::X3, offset: 16 };
        assert_eq!(st.int_srcs(), [Some(Reg::X2), Some(Reg::X3)]);
        assert_eq!(st.int_dest(), None);
        let alu = Inst::Alu { op: AluOp::Add, rd: Reg::X5, rs1: Reg::X6, rs2: Reg::X7 };
        assert_eq!(alu.int_dest(), Some(Reg::X5));
        let fld = Inst::Fld { rd: FReg::new(4), rs1: Reg::X2, offset: 0 };
        assert_eq!(fld.fp_dest(), Some(FReg::new(4)));
        assert_eq!(fld.int_srcs()[0], Some(Reg::X2));
    }

    #[test]
    fn div_detection() {
        assert!(MulDivOp::Div.is_div());
        assert!(MulDivOp::Remuw.is_div());
        assert!(!MulDivOp::Mul.is_div());
        assert!(!MulDivOp::Mulhu.is_div());
    }
}
