//! Binary decoding of 32-bit machine words into [`Inst`].

use crate::encode::*;
use crate::inst::{
    AluImmOp, AluOp, BranchOp, CsrOp, FpCmpOp, FpOp, Inst, LoadOp, MulDivOp, StoreOp,
};
use crate::meek::MeekOp;
use crate::reg::{FReg, Reg};
use std::fmt;

/// Error returned when a 32-bit word is not a recognised instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending machine word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognised instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn rd(w: u32) -> Reg {
    Reg::from_index(((w >> 7) & 0x1F) as u8)
}

fn rs1(w: u32) -> Reg {
    Reg::from_index(((w >> 15) & 0x1F) as u8)
}

fn rs2(w: u32) -> Reg {
    Reg::from_index(((w >> 20) & 0x1F) as u8)
}

fn frd(w: u32) -> FReg {
    FReg::new(((w >> 7) & 0x1F) as u8)
}

fn frs1(w: u32) -> FReg {
    FReg::new(((w >> 15) & 0x1F) as u8)
}

fn frs2(w: u32) -> FReg {
    FReg::new(((w >> 20) & 0x1F) as u8)
}

fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}

fn funct7(w: u32) -> u32 {
    w >> 25
}

fn imm_i(w: u32) -> i32 {
    (w as i32) >> 20
}

fn imm_s(w: u32) -> i32 {
    (((w as i32) >> 25) << 5) | (((w >> 7) & 0x1F) as i32)
}

fn imm_b(w: u32) -> i32 {
    let imm = (((w >> 31) & 1) << 12)
        | (((w >> 7) & 1) << 11)
        | (((w >> 25) & 0x3F) << 5)
        | (((w >> 8) & 0xF) << 1);
    ((imm as i32) << 19) >> 19
}

fn imm_u(w: u32) -> i32 {
    (w as i32) >> 12
}

fn imm_j(w: u32) -> i32 {
    let imm = (((w >> 31) & 1) << 20)
        | (((w >> 12) & 0xFF) << 12)
        | (((w >> 20) & 1) << 11)
        | (((w >> 21) & 0x3FF) << 1);
    ((imm as i32) << 11) >> 11
}

/// Decodes a 32-bit machine word into an [`Inst`].
///
/// # Errors
///
/// Returns [`DecodeError`] if the word is not an instruction this
/// simulator implements (RV64IM, Zicsr, the D-extension subset, or the
/// MEEK ISA extension).
pub fn decode(w: u32) -> Result<Inst, DecodeError> {
    let err = Err(DecodeError { word: w });
    let opcode = w & 0x7F;
    let inst = match opcode {
        OP_LUI => Inst::Lui { rd: rd(w), imm: imm_u(w) },
        OP_AUIPC => Inst::Auipc { rd: rd(w), imm: imm_u(w) },
        OP_JAL => Inst::Jal { rd: rd(w), offset: imm_j(w) },
        OP_JALR => {
            if funct3(w) != 0 {
                return err;
            }
            Inst::Jalr { rd: rd(w), rs1: rs1(w), offset: imm_i(w) }
        }
        OP_BRANCH => {
            let op = match funct3(w) {
                0b000 => BranchOp::Beq,
                0b001 => BranchOp::Bne,
                0b100 => BranchOp::Blt,
                0b101 => BranchOp::Bge,
                0b110 => BranchOp::Bltu,
                0b111 => BranchOp::Bgeu,
                _ => return err,
            };
            Inst::Branch { op, rs1: rs1(w), rs2: rs2(w), offset: imm_b(w) }
        }
        OP_LOAD => {
            let op = match funct3(w) {
                0b000 => LoadOp::Lb,
                0b001 => LoadOp::Lh,
                0b010 => LoadOp::Lw,
                0b011 => LoadOp::Ld,
                0b100 => LoadOp::Lbu,
                0b101 => LoadOp::Lhu,
                0b110 => LoadOp::Lwu,
                _ => return err,
            };
            Inst::Load { op, rd: rd(w), rs1: rs1(w), offset: imm_i(w) }
        }
        OP_STORE => {
            let op = match funct3(w) {
                0b000 => StoreOp::Sb,
                0b001 => StoreOp::Sh,
                0b010 => StoreOp::Sw,
                0b011 => StoreOp::Sd,
                _ => return err,
            };
            Inst::Store { op, rs1: rs1(w), rs2: rs2(w), offset: imm_s(w) }
        }
        OP_IMM => {
            let op = match funct3(w) {
                0b000 => AluImmOp::Addi,
                0b010 => AluImmOp::Slti,
                0b011 => AluImmOp::Sltiu,
                0b100 => AluImmOp::Xori,
                0b110 => AluImmOp::Ori,
                0b111 => AluImmOp::Andi,
                0b001 => {
                    if funct7(w) & !1 != 0 {
                        return err;
                    }
                    return Ok(Inst::AluImm {
                        op: AluImmOp::Slli,
                        rd: rd(w),
                        rs1: rs1(w),
                        imm: ((w >> 20) & 0x3F) as i32,
                    });
                }
                0b101 => {
                    let shamt = ((w >> 20) & 0x3F) as i32;
                    let op = match funct7(w) & !1 {
                        0x00 => AluImmOp::Srli,
                        0x20 => AluImmOp::Srai,
                        _ => return err,
                    };
                    return Ok(Inst::AluImm { op, rd: rd(w), rs1: rs1(w), imm: shamt });
                }
                _ => return err,
            };
            Inst::AluImm { op, rd: rd(w), rs1: rs1(w), imm: imm_i(w) }
        }
        OP_IMM_32 => match funct3(w) {
            0b000 => Inst::AluImm { op: AluImmOp::Addiw, rd: rd(w), rs1: rs1(w), imm: imm_i(w) },
            0b001 => {
                if funct7(w) != 0 {
                    return err;
                }
                Inst::AluImm {
                    op: AluImmOp::Slliw,
                    rd: rd(w),
                    rs1: rs1(w),
                    imm: ((w >> 20) & 0x1F) as i32,
                }
            }
            0b101 => {
                let shamt = ((w >> 20) & 0x1F) as i32;
                let op = match funct7(w) {
                    0x00 => AluImmOp::Srliw,
                    0x20 => AluImmOp::Sraiw,
                    _ => return err,
                };
                Inst::AluImm { op, rd: rd(w), rs1: rs1(w), imm: shamt }
            }
            _ => return err,
        },
        OP_OP => {
            let key = (funct7(w), funct3(w));
            if funct7(w) == 0x01 {
                let op = match funct3(w) {
                    0b000 => MulDivOp::Mul,
                    0b001 => MulDivOp::Mulh,
                    0b010 => MulDivOp::Mulhsu,
                    0b011 => MulDivOp::Mulhu,
                    0b100 => MulDivOp::Div,
                    0b101 => MulDivOp::Divu,
                    0b110 => MulDivOp::Rem,
                    _ => MulDivOp::Remu,
                };
                return Ok(Inst::MulDiv { op, rd: rd(w), rs1: rs1(w), rs2: rs2(w) });
            }
            let op = match key {
                (0x00, 0b000) => AluOp::Add,
                (0x20, 0b000) => AluOp::Sub,
                (0x00, 0b001) => AluOp::Sll,
                (0x00, 0b010) => AluOp::Slt,
                (0x00, 0b011) => AluOp::Sltu,
                (0x00, 0b100) => AluOp::Xor,
                (0x00, 0b101) => AluOp::Srl,
                (0x20, 0b101) => AluOp::Sra,
                (0x00, 0b110) => AluOp::Or,
                (0x00, 0b111) => AluOp::And,
                _ => return err,
            };
            Inst::Alu { op, rd: rd(w), rs1: rs1(w), rs2: rs2(w) }
        }
        OP_OP_32 => {
            if funct7(w) == 0x01 {
                let op = match funct3(w) {
                    0b000 => MulDivOp::Mulw,
                    0b100 => MulDivOp::Divw,
                    0b101 => MulDivOp::Divuw,
                    0b110 => MulDivOp::Remw,
                    0b111 => MulDivOp::Remuw,
                    _ => return err,
                };
                return Ok(Inst::MulDiv { op, rd: rd(w), rs1: rs1(w), rs2: rs2(w) });
            }
            let op = match (funct7(w), funct3(w)) {
                (0x00, 0b000) => AluOp::Addw,
                (0x20, 0b000) => AluOp::Subw,
                (0x00, 0b001) => AluOp::Sllw,
                (0x00, 0b101) => AluOp::Srlw,
                (0x20, 0b101) => AluOp::Sraw,
                _ => return err,
            };
            Inst::Alu { op, rd: rd(w), rs1: rs1(w), rs2: rs2(w) }
        }
        OP_LOAD_FP => {
            if funct3(w) != 0b011 {
                return err;
            }
            Inst::Fld { rd: frd(w), rs1: rs1(w), offset: imm_i(w) }
        }
        OP_STORE_FP => {
            if funct3(w) != 0b011 {
                return err;
            }
            Inst::Fsd { rs1: rs1(w), rs2: frs2(w), offset: imm_s(w) }
        }
        OP_MADD => {
            if (w >> 25) & 0x3 != 0b01 {
                return err;
            }
            Inst::FmaddD {
                rd: frd(w),
                rs1: frs1(w),
                rs2: frs2(w),
                rs3: FReg::new(((w >> 27) & 0x1F) as u8),
            }
        }
        OP_OP_FP => match funct7(w) {
            0x01 => Inst::Fp { op: FpOp::FaddD, rd: frd(w), rs1: frs1(w), rs2: frs2(w) },
            0x05 => Inst::Fp { op: FpOp::FsubD, rd: frd(w), rs1: frs1(w), rs2: frs2(w) },
            0x09 => Inst::Fp { op: FpOp::FmulD, rd: frd(w), rs1: frs1(w), rs2: frs2(w) },
            0x0D => Inst::Fp { op: FpOp::FdivD, rd: frd(w), rs1: frs1(w), rs2: frs2(w) },
            0x2D => Inst::Fp { op: FpOp::FsqrtD, rd: frd(w), rs1: frs1(w), rs2: frs1(w) },
            0x11 => {
                if funct3(w) != 0 {
                    return err;
                }
                Inst::Fp { op: FpOp::FsgnjD, rd: frd(w), rs1: frs1(w), rs2: frs2(w) }
            }
            0x15 => {
                let op = match funct3(w) {
                    0b000 => FpOp::FminD,
                    0b001 => FpOp::FmaxD,
                    _ => return err,
                };
                Inst::Fp { op, rd: frd(w), rs1: frs1(w), rs2: frs2(w) }
            }
            0x51 => {
                let op = match funct3(w) {
                    0b010 => FpCmpOp::FeqD,
                    0b001 => FpCmpOp::FltD,
                    0b000 => FpCmpOp::FleD,
                    _ => return err,
                };
                Inst::FpCmp { op, rd: rd(w), rs1: frs1(w), rs2: frs2(w) }
            }
            0x69 => {
                if (w >> 20) & 0x1F != 0x02 {
                    return err;
                }
                Inst::FcvtDL { rd: frd(w), rs1: rs1(w) }
            }
            0x61 => {
                if (w >> 20) & 0x1F != 0x02 {
                    return err;
                }
                Inst::FcvtLD { rd: rd(w), rs1: frs1(w) }
            }
            0x71 => Inst::FmvXD { rd: rd(w), rs1: frs1(w) },
            0x79 => Inst::FmvDX { rd: frd(w), rs1: rs1(w) },
            _ => return err,
        },
        OP_SYSTEM => match funct3(w) {
            0b000 => match w >> 20 {
                0 => Inst::Ecall,
                1 => Inst::Ebreak,
                _ => return err,
            },
            0b001 => Inst::Csr { op: CsrOp::Rw, rd: rd(w), rs1: rs1(w), csr: (w >> 20) as u16 },
            0b010 => Inst::Csr { op: CsrOp::Rs, rd: rd(w), rs1: rs1(w), csr: (w >> 20) as u16 },
            0b011 => Inst::Csr { op: CsrOp::Rc, rd: rd(w), rs1: rs1(w), csr: (w >> 20) as u16 },
            0b101 => Inst::Csr { op: CsrOp::Rwi, rd: rd(w), rs1: rs1(w), csr: (w >> 20) as u16 },
            0b110 => Inst::Csr { op: CsrOp::Rsi, rd: rd(w), rs1: rs1(w), csr: (w >> 20) as u16 },
            0b111 => Inst::Csr { op: CsrOp::Rci, rd: rd(w), rs1: rs1(w), csr: (w >> 20) as u16 },
            _ => return err,
        },
        OP_MISC_MEM => {
            if funct3(w) != 0 {
                return err;
            }
            Inst::Fence
        }
        OP_CUSTOM_0 => {
            let op = match funct3(w) {
                0 => MeekOp::BHook { rs1: rs1(w), rs2: rs2(w) },
                1 => MeekOp::BCheck { rs1: rs1(w) },
                2 => MeekOp::LMode { rs1: rs1(w), rs2: rs2(w) },
                3 => MeekOp::LRecord { rs1: rs1(w) },
                4 => MeekOp::LApply { rs1: rs1(w) },
                5 => MeekOp::LJal { rs1: rs1(w) },
                6 => MeekOp::LRslt { rd: rd(w) },
                _ => return err,
            };
            Inst::Meek(op)
        }
        _ => return err,
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn decode_known_words() {
        assert_eq!(
            decode(0x0015_8513).unwrap(),
            Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X10, rs1: Reg::X11, imm: 1 }
        );
        assert_eq!(
            decode(0xFFF5_0513).unwrap(),
            Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X10, rs1: Reg::X10, imm: -1 }
        );
        assert_eq!(decode(0x0000_0073).unwrap(), Inst::Ecall);
        assert_eq!(decode(0x0010_0073).unwrap(), Inst::Ebreak);
        assert_eq!(
            decode(0xFE00_0EE3).unwrap(),
            Inst::Branch { op: BranchOp::Beq, rs1: Reg::X0, rs2: Reg::X0, offset: -4 }
        );
    }

    #[test]
    fn reject_garbage() {
        assert!(decode(0xFFFF_FFFF).is_err());
        assert!(decode(0x0000_0000).is_err());
        // Valid opcode, invalid funct3 for JALR.
        assert!(decode(0x0000_1067).is_err());
    }

    #[test]
    fn roundtrip_spot_checks() {
        let insts = [
            Inst::Lui { rd: Reg::X5, imm: -1 },
            Inst::Auipc { rd: Reg::X6, imm: 0x7FFFF },
            Inst::Jal { rd: Reg::X1, offset: -1048576 },
            Inst::Jal { rd: Reg::X0, offset: 1048574 },
            Inst::Jalr { rd: Reg::X1, rs1: Reg::X5, offset: -2048 },
            Inst::Branch { op: BranchOp::Bgeu, rs1: Reg::X7, rs2: Reg::X8, offset: -4096 },
            Inst::Branch { op: BranchOp::Blt, rs1: Reg::X7, rs2: Reg::X8, offset: 4094 },
            Inst::Load { op: LoadOp::Lwu, rd: Reg::X9, rs1: Reg::X10, offset: 2047 },
            Inst::Store { op: StoreOp::Sh, rs1: Reg::X11, rs2: Reg::X12, offset: -2048 },
            Inst::AluImm { op: AluImmOp::Srai, rd: Reg::X13, rs1: Reg::X14, imm: 63 },
            Inst::AluImm { op: AluImmOp::Sraiw, rd: Reg::X13, rs1: Reg::X14, imm: 31 },
            Inst::Alu { op: AluOp::Sraw, rd: Reg::X15, rs1: Reg::X16, rs2: Reg::X17 },
            Inst::MulDiv { op: MulDivOp::Remuw, rd: Reg::X18, rs1: Reg::X19, rs2: Reg::X20 },
            Inst::Fld { rd: FReg::new(1), rs1: Reg::X2, offset: 16 },
            Inst::Fsd { rs1: Reg::X2, rs2: FReg::new(3), offset: -8 },
            Inst::Fp { op: FpOp::FdivD, rd: FReg::new(4), rs1: FReg::new(5), rs2: FReg::new(6) },
            Inst::FpCmp { op: FpCmpOp::FltD, rd: Reg::X21, rs1: FReg::new(7), rs2: FReg::new(8) },
            Inst::FmaddD {
                rd: FReg::new(9),
                rs1: FReg::new(10),
                rs2: FReg::new(11),
                rs3: FReg::new(12),
            },
            Inst::FcvtDL { rd: FReg::new(13), rs1: Reg::X22 },
            Inst::FcvtLD { rd: Reg::X23, rs1: FReg::new(14) },
            Inst::FmvXD { rd: Reg::X24, rs1: FReg::new(15) },
            Inst::FmvDX { rd: FReg::new(16), rs1: Reg::X25 },
            Inst::Csr { op: CsrOp::Rs, rd: Reg::X26, rs1: Reg::X27, csr: 0xC00 },
            Inst::Fence,
            Inst::Meek(MeekOp::BHook { rs1: Reg::X10, rs2: Reg::X11 }),
            Inst::Meek(MeekOp::LRslt { rd: Reg::X12 }),
        ];
        for inst in &insts {
            let word = encode(inst);
            assert_eq!(decode(word), Ok(*inst), "roundtrip failed for {inst:?} ({word:#010x})");
        }
    }

    #[test]
    fn fsqrt_uses_rs1_twice() {
        // FSQRT.D encodes rs2 = 0; we canonicalise the decoded form with
        // rs2 = rs1 so the dependence tracking sees one source.
        let word = encode(&Inst::Fp {
            op: FpOp::FsqrtD,
            rd: FReg::new(2),
            rs1: FReg::new(3),
            rs2: FReg::new(3),
        });
        assert_eq!(
            decode(word).unwrap(),
            Inst::Fp { op: FpOp::FsqrtD, rd: FReg::new(2), rs1: FReg::new(3), rs2: FReg::new(3) }
        );
    }
}
