//! Pre-decoded instruction tables: decode a program image **once**,
//! then execute by table lookup instead of re-decoding `u32`s on every
//! visit.
//!
//! Every hot loop in the reproduction — the golden interpreter, the
//! big-core oracle feed, and little-core replay — walks the same static
//! code over and over (workload bodies are loops by construction), so
//! per-visit `decode()` is pure overhead. A [`PreDecoded`] table lowers
//! the image's code span into a flat, cache-dense `Vec` of
//! `(raw word, decoded instruction)` records indexed by PC. Lookups on
//! PCs outside the table (or not 4-aligned — JALR masks its target with
//! `!1`, so 2-mod-4 targets are architecturally reachable) fall back to
//! word-at-a-time fetch+decode, keeping the fast path an exact
//! refinement of the slow one.
//!
//! The table snapshots the code at construction time: it is only valid
//! while the covered span is immutable. Both program sources in this
//! repo guarantee that (workload codegen keeps all stores inside its
//! data working set; the fuzzer's pointer masking confines traffic to a
//! data window far from code), and the golden-equivalence suite in
//! `meek-workloads`/`meek-difftest` pins the two paths to identical
//! architectural streams.

use crate::decode::decode;
use crate::exec::{self, Retired, Trap};
use crate::inst::Inst;
use crate::mem::{Bus, SparseMemory};
use crate::state::ArchState;

/// One pre-decoded code word: the raw bits plus the decoded form
/// (`None` when the word does not decode — executing it must raise the
/// same [`Trap::IllegalInstruction`] the word-decode path raises).
type Entry = (u32, Option<Inst>);

/// A flat pre-decoded view of the code span `[base, base + 4·len)`.
#[derive(Debug, Clone)]
pub struct PreDecoded {
    base: u64,
    entries: Vec<Entry>,
}

impl PreDecoded {
    /// Decodes `words` instruction slots starting at `base` out of
    /// `image`. Undecodable words are recorded as such, not skipped, so
    /// lookup never silently diverges from fetch+decode.
    pub fn from_image(image: &SparseMemory, base: u64, words: usize) -> PreDecoded {
        let entries = (0..words as u64)
            .map(|i| {
                let raw = image.peek_inst(base + 4 * i);
                (raw, decode(raw).ok())
            })
            .collect();
        PreDecoded { base, entries }
    }

    /// First covered PC.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Covered instruction slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table covers no code at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Table lookup: the `(raw, decoded)` record for `pc`, or `None`
    /// when `pc` is outside the covered span or not 4-aligned (a
    /// genuinely dynamic target — the caller must fall back to word
    /// decode).
    #[inline]
    pub fn lookup(&self, pc: u64) -> Option<Entry> {
        let off = pc.wrapping_sub(self.base);
        if off & 3 != 0 {
            return None;
        }
        self.entries.get((off >> 2) as usize).copied()
    }
}

/// [`exec::step`] through a pre-decoded table: executes one instruction
/// at `st.pc`, using the table when it covers the PC and falling back
/// to fetch+decode otherwise.
///
/// # Errors
///
/// Returns [`Trap::IllegalInstruction`] exactly where [`exec::step`]
/// would: on a word (tabled or fetched) that does not decode.
#[inline]
pub fn step_predecoded<B: Bus>(
    st: &mut ArchState,
    mem: &mut B,
    pd: &PreDecoded,
) -> Result<Retired, Trap> {
    let pc = st.pc;
    match pd.lookup(pc) {
        Some((raw, Some(inst))) => Ok(exec::execute(st, mem, pc, raw, inst)),
        Some((raw, None)) => Err(Trap::IllegalInstruction { pc, word: raw }),
        None => exec::step(st, mem),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::inst::AluImmOp;
    use crate::reg::Reg;

    fn addi(rd: Reg, rs1: Reg, imm: i32) -> u32 {
        encode(&Inst::AluImm { op: AluImmOp::Addi, rd, rs1, imm })
    }

    #[test]
    fn table_matches_word_decode_step_for_step() {
        let base = 0x1000u64;
        let words = [addi(Reg::X5, Reg::X0, 7), addi(Reg::X6, Reg::X5, 1), 0xFFFF_FFFF];
        let mut image = SparseMemory::new();
        image.load_program(base, &words);
        let pd = PreDecoded::from_image(&image, base, words.len());
        assert_eq!(pd.base(), base);
        assert_eq!(pd.len(), 3);

        let mut fast = (ArchState::new(base), image.clone());
        let mut slow = (ArchState::new(base), image);
        for _ in 0..2 {
            let a = step_predecoded(&mut fast.0, &mut fast.1, &pd).expect("decodes");
            let b = exec::step(&mut slow.0, &mut slow.1).expect("decodes");
            assert_eq!(a, b);
        }
        // The third word is undecodable: both paths trap identically.
        let a = step_predecoded(&mut fast.0, &mut fast.1, &pd).unwrap_err();
        let b = exec::step(&mut slow.0, &mut slow.1).unwrap_err();
        assert_eq!(a, b);
        assert_eq!(a, Trap::IllegalInstruction { pc: base + 8, word: 0xFFFF_FFFF });
    }

    #[test]
    fn misaligned_and_out_of_span_pcs_miss_the_table() {
        let base = 0x1000u64;
        let mut image = SparseMemory::new();
        image.load_program(base, &[addi(Reg::X5, Reg::X0, 1)]);
        let pd = PreDecoded::from_image(&image, base, 1);
        assert!(pd.lookup(base).is_some());
        assert!(pd.lookup(base + 2).is_none(), "2-mod-4 JALR targets must fall back");
        assert!(pd.lookup(base + 4).is_none(), "one past the end is outside");
        assert!(pd.lookup(base - 4).is_none(), "below base is outside");
        assert!(pd.lookup(0).is_none());
    }

    #[test]
    fn out_of_span_execution_falls_back_to_fetch_decode() {
        // Table covers only the first instruction; the second executes
        // through the fallback path and must behave identically.
        let base = 0x1000u64;
        let words = [addi(Reg::X5, Reg::X0, 7), addi(Reg::X6, Reg::X5, 1)];
        let mut image = SparseMemory::new();
        image.load_program(base, &words);
        let pd = PreDecoded::from_image(&image, base, 1);
        let mut st = ArchState::new(base);
        step_predecoded(&mut st, &mut image, &pd).expect("tabled");
        step_predecoded(&mut st, &mut image, &pd).expect("fallback");
        assert_eq!(st.x(Reg::X6), 8);
    }
}
