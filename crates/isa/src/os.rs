//! The minimal syscall/OS surface for real-program workloads.
//!
//! Synthetic codegen and fuzz programs never trap on purpose — `ecall`
//! is just a kernel-trap marker that forces a segment boundary. Real
//! assembled kernels, however, need a way to *finish* (exit), to emit
//! observable output (putchar into a console buffer), and to read a
//! deterministic cycle/instruction counter. This module defines that
//! surface.
//!
//! The whole surface is gated on the [`CSR_OS_ENABLE`] custom CSR so
//! that every pre-existing workload executes bit-identically: with the
//! gate CSR at zero (the default), `ecall` remains a pure kernel-trap
//! no-op and CSR `0xC02` keeps plain read/write-storage semantics.
//! The `meek-progs` loader sets the gate in the initial [`ArchState`]
//! of every loaded image.
//!
//! Syscall ABI (a standard RISC-V Linux-flavoured subset):
//!
//! | a7 (x17)       | call    | semantics                                   |
//! |----------------|---------|---------------------------------------------|
//! | [`SYS_EXIT`]   | exit    | redirect to [`HALT_PC`] (the program's exit PC) |
//! | [`SYS_PUTCHAR`]| putchar | append `a0 & 0xFF` to the run's console buffer |
//!
//! Unknown syscall numbers are architectural no-ops (still kernel
//! traps, so they still force an RCP). Syscalls never touch memory and
//! never clobber registers — this keeps little-core replay (which runs
//! against a panicking no-memory bus) an exact refinement of the golden
//! interpreter.
//!
//! [`ArchState`]: crate::state::ArchState

/// Custom machine-mode CSR enabling the OS surface when non-zero.
///
/// `0x7C0` is in the standard custom-read/write CSR space, away from
/// the scratch CSRs (`0x340`–`0x342`) and counter CSRs the fuzzer
/// exercises.
pub const CSR_OS_ENABLE: u16 = 0x7C0;

/// The `instret` counter CSR. With the OS surface enabled, reads
/// return the number of instructions retired so far (a deterministic
/// stand-in for a cycle counter) and writes are ignored; with the
/// surface disabled it is ordinary CSR storage.
pub const CSR_INSTRET: u16 = 0xC02;

/// The PC an exiting program redirects to. Loaded images use this as
/// their exit PC, so `ecall`/exit terminates the run exactly like a
/// synthetic workload falling off its final instruction. Far above any
/// code or data placement and 4-aligned.
pub const HALT_PC: u64 = 0xFFFF_F000;

/// Syscall number (in `a7`) of `exit`.
pub const SYS_EXIT: u64 = 93;

/// Syscall number (in `a7`) of `putchar` (write-one-byte).
pub const SYS_PUTCHAR: u64 = 64;

/// A syscall performed by a retired `ecall`, as recorded in
/// [`Retired::syscall`](crate::exec::Retired::syscall).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Syscall {
    /// `exit(code)` — the program is done; control transfers to
    /// [`HALT_PC`].
    Exit {
        /// Exit code from `a0`.
        code: u64,
    },
    /// `putchar(byte)` — append one byte to the console buffer.
    Putchar {
        /// The byte from `a0 & 0xFF`.
        byte: u8,
    },
}
