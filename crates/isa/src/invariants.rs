//! Shared instruction predicates for the MEEK workload invariants.
//!
//! Every program producer in the repo — the seed fuzzer, the mutation
//! operators, the dictionary harvester, the static analyzer — enforces
//! the same small set of invariants: candidates must round-trip the
//! codec, and nothing may clobber the data-window anchor registers or
//! the data pointer. These predicates used to live in
//! `meek-fuzz::mutate`; they are ISA-level facts, so they live here and
//! every consumer shares one definition.

use crate::decode::decode;
use crate::encode::encode;
use crate::inst::{AluImmOp, Inst};
use crate::reg::Reg;

/// The data-window anchor registers: `x26` holds the window base,
/// `x27` the window mask. A write to either can send a store outside
/// the data window (self-modifying code would diverge the replay way,
/// whose fetch path models an incoherent I-cache).
pub const ANCHOR_REGS: [Reg; 2] = [Reg::X26, Reg::X27];

/// The data pointer register memory traffic goes through.
pub const R_PTR: Reg = Reg::X28;

/// The integer register `inst` writes, if any.
///
/// Unlike [`Inst::int_dest`] this deliberately excludes the MEEK-ISA
/// system instructions: they never appear in fuzzed or assembled user
/// programs, and the mutation operators that call this predicate must
/// not start treating them as replaceable computation.
pub fn dest_reg(inst: &Inst) -> Option<Reg> {
    match *inst {
        Inst::Lui { rd, .. }
        | Inst::Auipc { rd, .. }
        | Inst::Jal { rd, .. }
        | Inst::Jalr { rd, .. }
        | Inst::Load { rd, .. }
        | Inst::AluImm { rd, .. }
        | Inst::Alu { rd, .. }
        | Inst::MulDiv { rd, .. }
        | Inst::FpCmp { rd, .. }
        | Inst::FcvtLD { rd, .. }
        | Inst::FmvXD { rd, .. }
        | Inst::Csr { rd, .. } => Some(rd),
        _ => None,
    }
}

/// Whether `inst` writes an anchor register (`x26`/`x27`).
pub fn writes_anchor(inst: &Inst) -> bool {
    dest_reg(inst).is_some_and(|rd| ANCHOR_REGS.contains(&rd))
}

/// Whether `inst`'s immediates fit their encoding formats. `encode`
/// debug-asserts these ranges, so they must be checked before
/// round-tripping an instruction a relinker may have pushed out of
/// range.
fn immediates_fit(inst: &Inst) -> bool {
    match *inst {
        Inst::Jal { offset, .. } => (-(1 << 20)..1 << 20).contains(&offset) && offset % 2 == 0,
        Inst::Branch { offset, .. } => (-4096..=4095).contains(&offset) && offset % 2 == 0,
        Inst::Jalr { offset, .. } | Inst::Load { offset, .. } | Inst::Fld { offset, .. } => {
            (-2048..=2047).contains(&offset)
        }
        Inst::Store { offset, .. } | Inst::Fsd { offset, .. } => (-2048..=2047).contains(&offset),
        Inst::AluImm { op, imm, .. } => match op {
            // Shift amounts are masked to their field width by `encode`.
            AluImmOp::Slli
            | AluImmOp::Srli
            | AluImmOp::Srai
            | AluImmOp::Slliw
            | AluImmOp::Srliw
            | AluImmOp::Sraiw => true,
            _ => (-2048..=2047).contains(&imm),
        },
        _ => true,
    }
}

/// Whether every instruction round-trips through `encode`/`decode`
/// unchanged — the gate every mutated candidate must pass (relinking
/// can push an offset out of its encoding range).
pub fn decodable(insts: &[Inst]) -> bool {
    insts.iter().all(|i| immediates_fit(i) && decode(encode(i)) == Ok(*i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluImmOp, LoadOp};
    use crate::meek::MeekOp;

    #[test]
    fn dest_reg_covers_the_writing_forms() {
        let addi = Inst::AluImm { op: AluImmOp::Addi, rd: Reg::X26, rs1: Reg::X0, imm: 1 };
        assert_eq!(dest_reg(&addi), Some(Reg::X26));
        assert!(writes_anchor(&addi));
        let ld = Inst::Load { op: LoadOp::Ld, rd: Reg::X27, rs1: R_PTR, offset: 0 };
        assert!(writes_anchor(&ld));
        assert_eq!(dest_reg(&Inst::Ecall), None);
        assert_eq!(dest_reg(&Inst::Fence), None);
        // MEEK system instructions are deliberately outside the predicate.
        assert_eq!(dest_reg(&Inst::Meek(MeekOp::LRslt { rd: Reg::X26 })), None);
    }

    #[test]
    fn decodable_rejects_unencodable_offsets() {
        let ok = Inst::Jal { rd: Reg::X0, offset: 16 };
        assert!(decodable(&[ok]));
        // A jal displacement beyond ±1 MiB cannot round-trip.
        let wild = Inst::Jal { rd: Reg::X0, offset: 1 << 24 };
        assert!(!decodable(&[wild]));
    }
}
