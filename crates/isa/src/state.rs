//! Architectural state: PC, integer and floating-point register files,
//! and a small CSR file.

use crate::reg::{FReg, Reg};
use std::collections::BTreeMap;

/// Architectural register state of a hart.
///
/// Floating-point registers are stored as raw `u64` bit patterns so that
/// checkpoint comparison (the ERCP register check in the paper) is exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchState {
    /// Program counter.
    pub pc: u64,
    x: [u64; 32],
    f: [u64; 32],
    csrs: BTreeMap<u16, u64>,
    /// Retired-instruction counter, bumped once per executed
    /// instruction. Backs the OS-surface `instret` CSR read (see
    /// [`crate::os`]); a recovery rollback must rewind it alongside the
    /// register and CSR state (`WorkloadRun::rollback` does).
    instret: u64,
}

impl ArchState {
    /// Creates a state with all registers zero and the PC at `pc`.
    pub fn new(pc: u64) -> ArchState {
        ArchState { pc, x: [0; 32], f: [0; 32], csrs: BTreeMap::new(), instret: 0 }
    }

    /// Reads integer register `r` (`x0` always reads zero).
    #[inline]
    pub fn x(&self, r: Reg) -> u64 {
        self.x[r.index() as usize]
    }

    /// Writes integer register `r`; writes to `x0` are discarded.
    #[inline]
    pub fn set_x(&mut self, r: Reg, v: u64) {
        if r != Reg::X0 {
            self.x[r.index() as usize] = v;
        }
    }

    /// Reads floating-point register `r` as a raw bit pattern.
    #[inline]
    pub fn f(&self, r: FReg) -> u64 {
        self.f[r.index() as usize]
    }

    /// Writes floating-point register `r` with a raw bit pattern.
    #[inline]
    pub fn set_f(&mut self, r: FReg, v: u64) {
        self.f[r.index() as usize] = v;
    }

    /// Reads CSR `addr` (unset CSRs read as zero).
    #[inline]
    pub fn csr(&self, addr: u16) -> u64 {
        self.csrs.get(&addr).copied().unwrap_or(0)
    }

    /// Writes CSR `addr`.
    #[inline]
    pub fn set_csr(&mut self, addr: u16, v: u64) {
        self.csrs.insert(addr, v);
    }

    /// The retired-instruction count.
    #[inline]
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Rewinds (or forces) the retired-instruction count — the
    /// instret half of a recovery rollback.
    #[inline]
    pub fn set_instret(&mut self, v: u64) {
        self.instret = v;
    }

    /// Advances the retired-instruction count by one. Called by the
    /// executor after every instruction.
    #[inline]
    pub fn bump_instret(&mut self) {
        self.instret = self.instret.wrapping_add(1);
    }

    /// A snapshot of the architectural registers — the paper's Register
    /// Checkpoint (RCP) payload: 32 GPRs + 32 FPRs + PC.
    pub fn checkpoint(&self) -> RegCheckpoint {
        RegCheckpoint { pc: self.pc, x: self.x, f: self.f }
    }

    /// A snapshot of the CSR file. RCPs deliberately exclude CSRs (the
    /// checkers re-seed CSR reads from the log), but the recovery
    /// subsystem must restore them on rollback, so checkpoints pin this
    /// alongside the [`RegCheckpoint`].
    pub fn csr_snapshot(&self) -> BTreeMap<u16, u64> {
        self.csrs.clone()
    }

    /// Replaces the CSR file from a snapshot — the CSR half of a
    /// recovery rollback.
    pub fn restore_csr_snapshot(&mut self, csrs: BTreeMap<u16, u64>) {
        self.csrs = csrs;
    }

    /// Overwrites the architectural registers from a checkpoint — the
    /// `l.apply` operation of the MEEK ISA.
    pub fn apply_checkpoint(&mut self, cp: &RegCheckpoint) {
        self.pc = cp.pc;
        self.x = cp.x;
        self.x[0] = 0;
        self.f = cp.f;
    }
}

impl Default for ArchState {
    fn default() -> Self {
        ArchState::new(0)
    }
}

/// A Register Checkpoint (RCP): the architectural register payload that
/// the big core's DEU extracts from the PRFs and forwards through F2 at
/// segment boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegCheckpoint {
    /// PC at the checkpoint (the first instruction of the next segment).
    pub pc: u64,
    /// Integer register values.
    pub x: [u64; 32],
    /// Floating-point register bit patterns.
    pub f: [u64; 32],
}

impl RegCheckpoint {
    /// A checkpoint of all-zero registers at `pc`.
    pub fn zeroed(pc: u64) -> RegCheckpoint {
        RegCheckpoint { pc, x: [0; 32], f: [0; 32] }
    }

    /// Number of 64-bit words in the checkpoint payload (x + f + pc).
    pub const WORDS: usize = 65;

    /// Compares two checkpoints, returning the first mismatching
    /// component, if any. Used for the ERCP register check.
    pub fn first_mismatch(&self, other: &RegCheckpoint) -> Option<CheckpointMismatch> {
        if self.pc != other.pc {
            return Some(CheckpointMismatch::Pc { expected: self.pc, actual: other.pc });
        }
        for i in 0..32 {
            if self.x[i] != other.x[i] {
                return Some(CheckpointMismatch::X {
                    index: i as u8,
                    expected: self.x[i],
                    actual: other.x[i],
                });
            }
        }
        for i in 0..32 {
            if self.f[i] != other.f[i] {
                return Some(CheckpointMismatch::F {
                    index: i as u8,
                    expected: self.f[i],
                    actual: other.f[i],
                });
            }
        }
        None
    }
}

/// A mismatching component found when comparing two register checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CheckpointMismatch {
    Pc { expected: u64, actual: u64 },
    X { index: u8, expected: u64, actual: u64 },
    F { index: u8, expected: u64, actual: u64 },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_hardwired_zero() {
        let mut st = ArchState::new(0);
        st.set_x(Reg::X0, 0xDEAD);
        assert_eq!(st.x(Reg::X0), 0);
        st.set_x(Reg::X1, 0xDEAD);
        assert_eq!(st.x(Reg::X1), 0xDEAD);
    }

    #[test]
    fn csr_default_zero() {
        let mut st = ArchState::new(0);
        assert_eq!(st.csr(0xC00), 0);
        st.set_csr(0xC00, 7);
        assert_eq!(st.csr(0xC00), 7);
    }

    #[test]
    fn checkpoint_roundtrip() {
        let mut st = ArchState::new(0x1000);
        st.set_x(Reg::X5, 99);
        st.set_f(FReg::new(3), 0x3FF0_0000_0000_0000);
        let cp = st.checkpoint();
        let mut other = ArchState::new(0);
        other.apply_checkpoint(&cp);
        assert_eq!(other.pc, 0x1000);
        assert_eq!(other.x(Reg::X5), 99);
        assert_eq!(other.f(FReg::new(3)), 0x3FF0_0000_0000_0000);
        assert_eq!(cp.first_mismatch(&other.checkpoint()), None);
    }

    #[test]
    fn checkpoint_apply_keeps_x0_zero() {
        let mut cp = RegCheckpoint::zeroed(0);
        cp.x[0] = 42; // corrupted checkpoint must not break the zero register
        let mut st = ArchState::new(0);
        st.apply_checkpoint(&cp);
        assert_eq!(st.x(Reg::X0), 0);
    }

    #[test]
    fn mismatch_detection() {
        let a = RegCheckpoint::zeroed(0x100);
        let mut b = a;
        assert_eq!(a.first_mismatch(&b), None);
        b.x[7] = 1;
        assert_eq!(
            a.first_mismatch(&b),
            Some(CheckpointMismatch::X { index: 7, expected: 0, actual: 1 })
        );
        let mut c = a;
        c.pc = 0x104;
        assert!(matches!(a.first_mismatch(&c), Some(CheckpointMismatch::Pc { .. })));
        let mut d = a;
        d.f[31] = 5;
        assert!(matches!(a.first_mismatch(&d), Some(CheckpointMismatch::F { index: 31, .. })));
    }
}
