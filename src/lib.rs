//! Umbrella crate for the MEEK reproduction: re-exports every
//! sub-crate under one roof so downstream users (and the repo's
//! top-level `tests/` and `examples/`) can depend on a single package.
//!
//! The actual implementation lives in the `crates/` workspace:
//!
//! * [`isa`] — RV64 subset: decode/encode/execute, architectural state
//! * `meek-mem` — cache hierarchy, DRAM, parity
//! * `meek-bigcore` — OoO superscalar timing model (SonicBOOM-class)
//! * [`littlecore`] — in-order checker core with the Load-Store Log
//! * `meek-fabric` — the F2 forwarding fabric and the AXI baseline
//! * [`core`] — the assembled MEEK SoC (DEU, segments, OS model,
//!   faults) and its typed construction surface
//!   (`meek_core::sim::SimBuilder` / `Observer`)
//! * [`workloads`] — SPECint 2006 / PARSEC 3 profile-driven codegen
//! * [`baselines`] — EA-LockStep and Nzdc comparison points
//! * [`area`] — Table III area model
//! * [`campaign`] — sharded, deterministic fault-injection campaigns
//! * [`telemetry`] — deterministic metrics registry + span profiler

pub use meek_area as area;
pub use meek_baselines as baselines;
pub use meek_campaign as campaign;
pub use meek_core as core;
pub use meek_isa as isa;
pub use meek_littlecore as littlecore;
pub use meek_telemetry as telemetry;
pub use meek_workloads as workloads;
